package log

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/rb"
	"repro/internal/trace"
	"repro/internal/types"
)

// stubEnv is a minimal single-process environment: sends are captured,
// timers are never fired. Enough to unit-test the engine's bookkeeping;
// full-protocol behavior is covered by the simulator tests in
// internal/runner and internal/rt.
type stubEnv struct {
	id     types.ProcID
	params types.Params
	sent   []proto.Message
}

var _ proto.Env = (*stubEnv)(nil)

func (e *stubEnv) ID() types.ProcID     { return e.id }
func (e *stubEnv) Params() types.Params { return e.params }
func (e *stubEnv) Now() types.Time      { return 0 }
func (e *stubEnv) Send(to types.ProcID, m proto.Message) {
	e.sent = append(e.sent, m)
}
func (e *stubEnv) Broadcast(m proto.Message) {
	for range e.params.AllProcs() {
		e.sent = append(e.sent, m)
	}
}
func (e *stubEnv) SetTimer(d types.Duration, fn func()) (cancel func()) {
	return func() {}
}
func (e *stubEnv) Trace() trace.Sink { return trace.Discard{} }

func newTestEngine(t *testing.T, cfg Config) (*Engine, *stubEnv) {
	t.Helper()
	env := &stubEnv{id: 1, params: types.Params{N: 4, T: 1}}
	cfg.Env = env
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, env
}

func TestSubmitIdempotent(t *testing.T) {
	eng, _ := newTestEngine(t, Config{})
	if err := eng.Submit("a"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("a"); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 1 {
		t.Fatalf("duplicate submit queued twice: pending=%d", eng.Pending())
	}
}

func TestSubmitRejectsBot(t *testing.T) {
	eng, _ := newTestEngine(t, Config{})
	if err := eng.Submit(types.BotValue); err == nil {
		t.Fatal("⊥ submission accepted")
	}
}

func TestStartTwice(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestStartOpensPipelineInstances(t *testing.T) {
	eng, env := newTestEngine(t, Config{Pipeline: 3})
	if err := eng.Submit("a"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if eng.Instances() != 3 {
		t.Fatalf("Start opened %d instances, want 3", eng.Instances())
	}
	// Every outgoing message must be stamped with an instance in [0, 3).
	seen := map[types.Instance]bool{}
	for _, m := range env.sent {
		if m.Instance < 0 || m.Instance >= 3 {
			t.Fatalf("message stamped with instance %v", m.Instance)
		}
		seen[m.Instance] = true
	}
	if len(seen) != 3 {
		t.Fatalf("traffic on %d instances, want 3", len(seen))
	}
}

func TestInFlightCommandsNotReProposed(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2, BatchSize: 8})
	for _, c := range []types.Value{"a", "b"} {
		if err := eng.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Instance 0's batch carries a and b; instance 1 must not re-propose
	// them while 0 is undecided.
	i0, i1 := eng.insts[0], eng.insts[1]
	if len(i0.ownBatch) != 2 {
		t.Fatalf("instance 0 batch: %q", i0.ownBatch)
	}
	if len(i1.ownBatch) != 0 {
		t.Fatalf("instance 1 re-proposed in-flight commands: %q", i1.ownBatch)
	}
}

func TestBatchSizeCap(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1, BatchSize: 4})
	for i := 0; i < 10; i++ {
		if err := eng.Submit(types.Value(string(rune('a' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.insts[0].ownBatch); got != 4 {
		t.Fatalf("batch carries %d commands, want 4", got)
	}
}

func TestMaxLeadGuard(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1, MaxLead: 8})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	m := proto.Message{
		Kind: proto.MsgRBInit, Tag: proto.Tag{Mod: proto.ModConsCB0},
		Instance: 1 << 30, Origin: 2, Val: "spam",
	}
	eng.OnMessage(2, m)
	if eng.DroppedAhead() != 1 {
		t.Fatalf("far-ahead instance not dropped (drops=%d)", eng.DroppedAhead())
	}
	if eng.Instances() != 1 {
		t.Fatalf("far-ahead instance instantiated an engine (insts=%d)", eng.Instances())
	}
	// Negative instances (impossible off the wire, but defensive).
	m.Instance = -1
	eng.OnMessage(2, m)
	if eng.DroppedAhead() != 2 {
		t.Fatal("negative instance not dropped")
	}
	// In-window instances are accepted.
	m.Instance = 3
	eng.OnMessage(2, m)
	if eng.Instances() != 2 {
		t.Fatal("in-window instance not instantiated")
	}
}

func TestUncoalescedEngineDropsCarrierKinds(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1}) // Coalesce off
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	before := eng.Instances()
	// The carrier kinds bypass proto.Node dedup and carry Instance 0; an
	// uncoalesced engine must drop them, not route them into instance 0.
	for _, k := range []proto.MsgKind{proto.MsgRBVector, proto.MsgRBPull, proto.MsgRBPullResp} {
		eng.OnMessage(2, proto.Message{Kind: k, Tag: proto.Tag{Mod: proto.ModRBRelay}, Origin: 2, Val: "junk"})
	}
	if eng.Instances() != before || eng.DroppedAhead() != 0 || eng.DroppedRetired() != 0 {
		t.Fatalf("carrier kinds routed: insts=%d ahead=%d retired=%d",
			eng.Instances(), eng.DroppedAhead(), eng.DroppedRetired())
	}
}

func TestCoalescedEngineWindowGuardsRelayState(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1, MaxLead: 8, Coalesce: true})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// A vector naming a far-future instance: the relay must forward it
	// into the MaxLead accounting (lag signal) without allocating state,
	// and an out-of-window INIT must not seed the value cache.
	enc, err := rb.EncodeEntries([]rb.Entry{{
		Kind: proto.MsgRBEcho, Tag: proto.Tag{Mod: proto.ModConsCB0},
		Origin: 2, Instance: 1 << 30, Val: "spam",
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.OnMessage(2, proto.Message{Kind: proto.MsgRBVector, Tag: proto.Tag{Mod: proto.ModRBRelay}, Origin: 2, Val: types.Value(enc)})
	if eng.DroppedAhead() != 1 {
		t.Fatalf("out-of-window entry missing from lag accounting (drops=%d)", eng.DroppedAhead())
	}
	if eng.Relay().WindowDrops() != 1 || eng.Relay().Parked() != 0 {
		t.Fatalf("relay state: windowDrops=%d parked=%d", eng.Relay().WindowDrops(), eng.Relay().Parked())
	}
	cacheBefore := eng.Relay().CacheBytes()
	eng.OnMessage(2, proto.Message{
		Kind: proto.MsgRBInit, Tag: proto.Tag{Mod: proto.ModConsCB0},
		Origin: 2, Instance: 1 << 30, Val: types.Value(make([]byte, 64)),
	})
	if got := eng.Relay().CacheBytes(); got != cacheBefore {
		t.Fatalf("out-of-window INIT cached (%d bytes, was %d)", got, cacheBefore)
	}
}

func TestCloseStopsNewInstances(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	// Deciding instance 0 would normally start instance 2.
	eng.onInstanceDecided(0, EncodeBatch(nil))
	if eng.Instances() != 2 {
		t.Fatalf("closed engine opened a new instance (insts=%d)", eng.Instances())
	}
	if eng.Applied() != 1 {
		t.Fatalf("applied=%v, want 1", eng.Applied())
	}
}

func TestApplyInInstanceOrder(t *testing.T) {
	var got []types.Value
	eng, _ := newTestEngine(t, Config{Pipeline: 3, OnCommit: func(e Entry) {
		got = append(got, e.Cmd)
	}})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Decisions arrive out of order: 2, 0, 1.
	eng.onInstanceDecided(2, EncodeBatch([]types.Value{"c"}))
	if eng.Applied() != 0 {
		t.Fatal("applied out of order")
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a"}))
	if eng.Applied() != 1 {
		t.Fatalf("applied=%v after instance 0 decided", eng.Applied())
	}
	eng.onInstanceDecided(1, EncodeBatch([]types.Value{"b"}))
	if eng.Applied() != 3 {
		t.Fatalf("applied=%v after all decided", eng.Applied())
	}
	want := []types.Value{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("committed %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed %q, want %q", got, want)
		}
	}
}

func TestApplyDeduplicatesAcrossBatches(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a", "b"}))
	eng.onInstanceDecided(1, EncodeBatch([]types.Value{"b", "c"}))
	if eng.Committed() != 3 {
		t.Fatalf("committed=%d, want 3 (b deduplicated)", eng.Committed())
	}
	if eng.Entries()[2].Cmd != "c" {
		t.Fatalf("entries: %+v", eng.Entries())
	}
}

func TestBotAndGarbageDecisionsAreNoOps(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, types.BotValue)
	eng.onInstanceDecided(1, types.Value("not a batch"))
	if eng.Committed() != 0 {
		t.Fatal("no-op decisions committed commands")
	}
	if eng.NoOps() != 2 {
		t.Fatalf("noops=%d, want 2", eng.NoOps())
	}
	if eng.Applied() != 2 {
		t.Fatalf("applied=%v, want 2", eng.Applied())
	}
}

func TestTargetClosesEngine(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 1, Target: 2})
	for _, c := range []types.Value{"a", "b", "c"} {
		if err := eng.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a", "b"}))
	if !eng.Closed() {
		t.Fatal("engine not closed at target")
	}
	if eng.Instances() != 1 {
		t.Fatalf("closed engine opened instance (insts=%d)", eng.Instances())
	}
}

// retireRecorder captures Retirer calls.
type retireRecorder struct{ floors []types.Instance }

func (r *retireRecorder) RetireInstancesBefore(f types.Instance) { r.floors = append(r.floors, f) }

func TestCompactRetiresWholesale(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 4})
	rec := &retireRecorder{}
	eng.SetRetirer(rec)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a", "b"}))
	eng.onInstanceDecided(1, EncodeBatch([]types.Value{"c"}))
	eng.onInstanceDecided(2, EncodeBatch([]types.Value{"d"}))
	if eng.Applied() != 3 || eng.Committed() != 4 {
		t.Fatalf("setup: applied=%v committed=%d", eng.Applied(), eng.Committed())
	}
	instsBefore := eng.Instances()

	released := eng.Compact(2)
	if released != 2 {
		t.Fatalf("released %d engines, want 2", released)
	}
	if eng.Floor() != 2 || eng.Retired() != 2 {
		t.Fatalf("floor=%v retired=%d", eng.Floor(), eng.Retired())
	}
	if eng.Instances() != instsBefore-2 {
		t.Fatalf("live instances %d, want %d", eng.Instances(), instsBefore-2)
	}
	// Entries of instances 0 and 1 ("a","b","c") are trimmed; the suffix
	// and the total count survive.
	if eng.EntriesBase() != 3 || eng.Committed() != 4 {
		t.Fatalf("base=%d committed=%d", eng.EntriesBase(), eng.Committed())
	}
	if len(eng.Entries()) != 1 || eng.Entries()[0].Cmd != "d" || eng.Entries()[0].Index != 3 {
		t.Fatalf("retained entries: %+v", eng.Entries())
	}
	if len(rec.floors) != 1 || rec.floors[0] != 2 {
		t.Fatalf("retirer calls: %v", rec.floors)
	}
}

func TestCompactClampsToApplied(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 4})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a"}))
	// Instance 1 not applied: a floor of 100 must clamp to 1.
	eng.Compact(100)
	if eng.Floor() != 1 {
		t.Fatalf("floor=%v, want clamp to applied boundary 1", eng.Floor())
	}
	// Re-compacting at or below the floor is a no-op.
	if n := eng.Compact(1); n != 0 {
		t.Fatalf("re-compact released %d", n)
	}
}

func TestCompactDropsRetiredInstanceTraffic(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a"}))
	eng.Compact(1)
	m := proto.Message{
		Kind: proto.MsgRBInit, Tag: proto.Tag{Mod: proto.ModConsCB0},
		Instance: 0, Origin: 2, Val: "late",
	}
	eng.OnMessage(2, m)
	if eng.DroppedRetired() != 1 {
		t.Fatalf("retired-instance message not dropped (drops=%d)", eng.DroppedRetired())
	}
	if eng.Instances() == 0 {
		t.Fatal("live instances vanished")
	}
}

// TestCompactForgetsContentDedup: compaction trades the log's commit-time
// content dedup for bounded memory — a command committed before the floor
// may commit again (the session layer above restores exactly-once).
func TestCompactForgetsContentDedup(t *testing.T) {
	var got []types.Value
	eng, _ := newTestEngine(t, Config{Pipeline: 8, OnCommit: func(e Entry) {
		got = append(got, e.Cmd)
	}})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"x"}))
	// Before compaction a re-decided "x" deduplicates.
	eng.onInstanceDecided(1, EncodeBatch([]types.Value{"x"}))
	if eng.Committed() != 1 {
		t.Fatalf("pre-compaction dedup broken: committed=%d", eng.Committed())
	}
	eng.Compact(2)
	eng.onInstanceDecided(2, EncodeBatch([]types.Value{"x"}))
	if eng.Committed() != 2 {
		t.Fatalf("post-compaction recommit suppressed: committed=%d", eng.Committed())
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "x" {
		t.Fatalf("commit stream: %q", got)
	}
}

func TestAutoCompactLag(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 8, AutoCompactLag: 2})
	rec := &retireRecorder{}
	eng.SetRetirer(rec)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	for i := types.Instance(0); i < 6; i++ {
		eng.onInstanceDecided(i, EncodeBatch([]types.Value{types.Value("c" + i.String())}))
	}
	// applied = 6, lag = 2 ⇒ floor must trail at 4.
	if eng.Floor() != 4 {
		t.Fatalf("floor=%v, want 4", eng.Floor())
	}
	if eng.Retired() != 4 {
		t.Fatalf("retired=%d, want 4", eng.Retired())
	}
}

func TestOnApplyHookOrderAndCounts(t *testing.T) {
	type applyRec struct {
		inst  types.Instance
		newly int
	}
	var applies []applyRec
	var commitsSeen int
	eng, _ := newTestEngine(t, Config{
		Pipeline: 3,
		OnCommit: func(e Entry) { commitsSeen++ },
		OnApply: func(i types.Instance, newly int) {
			applies = append(applies, applyRec{i, newly})
			if newly > commitsSeen {
				t.Errorf("OnApply(%v) before its commits delivered", i)
			}
		},
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(1, EncodeBatch([]types.Value{"b"}))
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a", "c"}))
	eng.onInstanceDecided(2, types.BotValue)
	want := []applyRec{{0, 2}, {1, 1}, {2, 0}}
	if len(applies) != len(want) {
		t.Fatalf("applies: %+v", applies)
	}
	for i := range want {
		if applies[i] != want[i] {
			t.Fatalf("applies: %+v, want %+v", applies, want)
		}
	}
}

// --- Snapshot-install tests (state transfer) ---------------------------------

// installRetained builds a contiguous retained suffix ending at index−1.
func installRetained(index int, pairs ...struct {
	inst types.Instance
	cmd  types.Value
}) []Entry {
	out := make([]Entry, len(pairs))
	base := index - len(pairs)
	for i, p := range pairs {
		out[i] = Entry{Index: base + i, Instance: p.inst, Cmd: p.cmd}
	}
	return out
}

func pair(inst types.Instance, cmd types.Value) struct {
	inst types.Instance
	cmd  types.Value
} {
	return struct {
		inst types.Instance
		cmd  types.Value
	}{inst, cmd}
}

func TestInstallSnapshotJumpsAndSeeds(t *testing.T) {
	var commits []Entry
	eng, _ := newTestEngine(t, Config{
		Pipeline: 2, BatchSize: 4,
		OnCommit: func(e Entry) { commits = append(commits, e) },
	})
	for _, c := range []types.Value{"a", "b", "x", "y"} {
		if err := eng.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Snapshot covers 5 entries through instance 10; the retained window
	// holds the last two ("a" committed at i8, "b" at i9).
	retained := installRetained(5, pair(8, "a"), pair(9, "b"))
	if err := eng.InstallSnapshot(10, 5, retained); err != nil {
		t.Fatal(err)
	}
	if eng.Applied() != 10 || eng.Committed() != 5 || eng.Floor() != 8 {
		t.Fatalf("applied=%v committed=%d floor=%v, want 10/5/8", eng.Applied(), eng.Committed(), eng.Floor())
	}
	if eng.Installs() != 1 {
		t.Fatalf("installs=%d", eng.Installs())
	}
	if got := eng.EntriesBase(); got != 3 {
		t.Fatalf("entriesBase=%d, want 3", got)
	}
	// The pipeline reopened at the boundary.
	if eng.insts[10] == nil || eng.insts[11] == nil {
		t.Fatal("pipeline not reopened at boundary")
	}
	// Dedup was seeded: a batch re-deciding "a" and "b" commits nothing,
	// while "x" (pending, never committed) commits at index 5.
	eng.onInstanceDecided(10, EncodeBatch([]types.Value{"a", "b", "x"}))
	if len(commits) != 1 || commits[0].Cmd != "x" || commits[0].Index != 5 {
		t.Fatalf("post-install commits: %+v", commits)
	}
	// The pending queue was dropped wholesale at install: commands
	// committed in the SKIPPED prefix are indistinguishable from live
	// ones here, and re-proposing one would commit it twice everywhere.
	if eng.Pending() != 0 {
		t.Fatalf("pending=%d after install, want 0", eng.Pending())
	}
	if got := eng.insts[11].ownBatch; len(got) != 0 {
		t.Fatalf("post-install proposal carries %q", got)
	}
}

func TestInstallSnapshotHaltsRetiredInstances(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	i0 := eng.Instance(0)
	if err := eng.InstallSnapshot(6, 3, nil); err != nil {
		t.Fatal(err)
	}
	if !i0.Stalled() {
		t.Fatal("retired undecided instance engine not halted")
	}
	if eng.Instance(0) != nil {
		t.Fatal("retired instance still registered")
	}
	if eng.Retired() != 2 {
		t.Fatalf("retired=%d, want 2", eng.Retired())
	}
	// With no retained suffix the floor is the boundary itself.
	if eng.Floor() != 6 {
		t.Fatalf("floor=%v, want 6", eng.Floor())
	}
}

func TestInstallSnapshotRejectsStaleAndForged(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.onInstanceDecided(0, EncodeBatch([]types.Value{"a"}))
	if err := eng.InstallSnapshot(1, 5, nil); err == nil {
		t.Fatal("boundary at applied accepted")
	}
	if err := eng.InstallSnapshot(4, 0, nil); err == nil {
		t.Fatal("index behind committed accepted")
	}
	// Retained suffix with a gap in indexes.
	bad := []Entry{{Index: 1, Instance: 2, Cmd: "b"}, {Index: 3, Instance: 3, Cmd: "c"}}
	if err := eng.InstallSnapshot(5, 3, bad); err == nil {
		t.Fatal("gapped retained suffix accepted")
	}
	// Retained entry at or past the boundary.
	bad = []Entry{{Index: 2, Instance: 7, Cmd: "b"}}
	if err := eng.InstallSnapshot(5, 3, bad); err == nil {
		t.Fatal("retained instance past boundary accepted")
	}
	if eng.Installs() != 0 {
		t.Fatalf("failed installs counted: %d", eng.Installs())
	}
}

func TestInstallSnapshotClosesAtTarget(t *testing.T) {
	eng, _ := newTestEngine(t, Config{Pipeline: 2, Target: 5})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.InstallSnapshot(9, 5, nil); err != nil {
		t.Fatal(err)
	}
	if !eng.Closed() {
		t.Fatal("engine open past Target after install")
	}
	// No proposals into instances nobody else will run.
	if eng.insts[9] != nil {
		t.Fatal("closed engine reopened the pipeline")
	}
}

func TestOnDroppedAheadHook(t *testing.T) {
	var lagged []types.Instance
	eng, _ := newTestEngine(t, Config{
		Pipeline: 2, MaxLead: 4,
		OnDroppedAhead: func(i types.Instance) { lagged = append(lagged, i) },
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	eng.OnMessage(2, proto.Message{Kind: proto.MsgRBInit, Tag: proto.Tag{Mod: proto.ModConsCB0}, Instance: 7, Origin: 2, Val: "v"})
	eng.OnMessage(2, proto.Message{Kind: proto.MsgRBInit, Tag: proto.Tag{Mod: proto.ModConsCB0}, Instance: 2, Origin: 2, Val: "v"})
	if len(lagged) != 1 || lagged[0] != 7 {
		t.Fatalf("lag hook calls: %v", lagged)
	}
	if eng.DroppedAhead() != 1 {
		t.Fatalf("droppedAhead=%d", eng.DroppedAhead())
	}
}

// TestCanonicalBatches: with CanonicalBatches set, batch selection is a
// function of the pending SET — engines that received the same commands
// in different arrival orders propose identical batches (the liveness
// requirement of live clusters, where forwarded commands arrive at each
// replica in transport order).
func TestCanonicalBatches(t *testing.T) {
	a, _ := newTestEngine(t, Config{CanonicalBatches: true, BatchSize: 2})
	b, _ := newTestEngine(t, Config{CanonicalBatches: true, BatchSize: 2})
	for _, c := range []types.Value{"cmd-c", "cmd-a", "cmd-b"} {
		if err := a.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []types.Value{"cmd-b", "cmd-c", "cmd-a"} {
		if err := b.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	ba, bb := a.nextBatch(), b.nextBatch()
	want := []types.Value{"cmd-a", "cmd-b"} // sorted, capped at BatchSize
	for i, batch := range [][]types.Value{ba, bb} {
		if len(batch) != len(want) || batch[0] != want[0] || batch[1] != want[1] {
			t.Fatalf("engine %d proposed %v, want %v", i, batch, want)
		}
	}

	// Canonical selection ignores the in-flight partition: a second
	// undecided instance re-proposes the same head-of-queue batch
	// (apply-time content dedup keeps commits exactly-once). Excluding
	// in-flight commands would make the batch depend on local decide
	// timing, which diverges across replicas.
	for _, c := range ba {
		a.inFlight[c]++
	}
	if again := a.nextBatch(); len(again) != 2 || again[0] != want[0] || again[1] != want[1] {
		t.Fatalf("canonical re-proposal = %v, want %v", again, want)
	}

	// Default (FIFO) selection keeps arrival order and partitions the
	// queue across in-flight batches: digest-pinned simulation runs
	// must not change shape.
	f, _ := newTestEngine(t, Config{BatchSize: 2})
	for _, c := range []types.Value{"cmd-c", "cmd-a", "cmd-b"} {
		if err := f.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if batch := f.nextBatch(); batch[0] != "cmd-c" || batch[1] != "cmd-a" {
		t.Fatalf("FIFO selection changed: %v", batch)
	}
	f.inFlight["cmd-c"]++
	f.inFlight["cmd-a"]++
	if batch := f.nextBatch(); len(batch) != 1 || batch[0] != "cmd-b" {
		t.Fatalf("FIFO partition = %v, want [cmd-b]", batch)
	}
}
