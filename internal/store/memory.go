package store

import (
	"sync"

	"repro/internal/log"
	"repro/internal/types"
)

// Memory is the in-process Persister: it retains everything in RAM, so
// "durability" lasts exactly as long as the hosting process. It exists
// for two callers — simulated crash-restart runs, where the scenario
// engine keeps the Memory store alive across a replica's simulated
// power-off so restart-from-store is testable deterministically, and as
// the executable specification the File implementation is contract-
// tested against (storetest.Contract runs the same suite over both).
type Memory struct {
	mu       sync.Mutex
	entries  []log.Entry
	boundary types.Instance
	snap     []byte
	snapIdx  int
	snapInst types.Instance
	hasSnap  bool
}

var _ Persister = (*Memory)(nil)

// NewMemory builds an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

// AppendEntry implements Persister.
func (m *Memory) AppendEntry(e log.Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	return nil
}

// MarkApplied implements Persister.
func (m *Memory) MarkApplied(boundary types.Instance) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if boundary > m.boundary {
		m.boundary = boundary
	}
	return nil
}

// StampSnapshot implements Persister.
func (m *Memory) StampSnapshot(index int, instance types.Instance, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = append([]byte(nil), payload...)
	m.snapIdx, m.snapInst, m.hasSnap = index, instance, true
	if instance > m.boundary {
		m.boundary = instance
	}
	return nil
}

// TruncatePrefix implements Persister.
func (m *Memory) TruncatePrefix(index int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	trim := 0
	for trim < len(m.entries) && m.entries[trim].Index < index {
		trim++
	}
	if trim > 0 {
		rest := make([]log.Entry, len(m.entries)-trim)
		copy(rest, m.entries[trim:])
		m.entries = rest
	}
	return nil
}

// Recover implements Persister.
func (m *Memory) Recover() (Recovered, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Recovered{
		Entries:  append([]log.Entry(nil), m.entries...),
		Boundary: m.boundary,
	}
	if m.hasSnap {
		r.SnapPayload = append([]byte(nil), m.snap...)
		r.SnapIndex, r.SnapInstance = m.snapIdx, m.snapInst
	}
	return r, nil
}

// Sync implements Persister (a no-op: RAM is as durable as it gets).
func (m *Memory) Sync() error { return nil }

// Close implements Persister. Deliberately a no-op that keeps the state:
// a simulated restart hands the same Memory to the fresh replica, whose
// Recover models the disk surviving the crash.
func (m *Memory) Close() error { return nil }
