// Package store is the durable-storage layer of a replica: a Persister
// interface over the ordered facts a crashed replica needs to restart
// from local state instead of a peer snapshot transfer, plus two
// implementations — Memory (the historical in-process behavior, and the
// default everywhere determinism-pinned simulations run) and File (an
// fsync'd append-only WAL with CRC-framed records and torn-tail-tolerant
// recovery, plus atomically-written snapshot files).
//
// What is persisted is deliberately minimal and replica-local:
//
//   - every committed entry, appended BEFORE it is applied (write-ahead
//     discipline: a command visible in machine state is always on disk);
//   - applied-instance boundary marks (the fsync points — an entry is
//     durable once the boundary covering it was marked);
//   - the latest digest-stamped snapshot payload (the sm.EncodeTransfer
//     bytes: snapshot plus its retained dedup window), which makes
//     everything before its index disposable (TruncatePrefix).
//
// Recovery composes the newest valid snapshot with the WAL suffix past
// its index. The composition is verified by the sm layer on boot (the
// snapshot must re-encode to its digest, the suffix must be
// index-contiguous), so a corrupted store degrades into "restart from
// peers", never into silently wrong state — see sm.Boot and
// docs/persistence.md for the recovery invariants.
package store

import (
	"repro/internal/log"
	"repro/internal/types"
)

// Recovered is the durable state a Persister reconstructs on open: the
// newest valid snapshot payload (if any), the WAL entry suffix, and the
// highest durable applied-instance boundary.
type Recovered struct {
	// SnapPayload is the latest stamped snapshot transfer payload
	// (sm.EncodeTransfer bytes); nil if no snapshot was ever stamped.
	SnapPayload []byte
	// SnapIndex and SnapInstance are the stamped apply position of
	// SnapPayload (meaningless when SnapPayload is nil).
	SnapIndex    int
	SnapInstance types.Instance
	// Entries is the retained WAL suffix in append order. After a
	// TruncatePrefix(i) it holds only entries with Index >= i.
	Entries []log.Entry
	// Boundary is the highest instance boundary marked applied
	// (MarkApplied); instances [0, Boundary) were fully applied before
	// the crash. Entries past the boundary's commit point may follow in
	// Entries — a crash can land between an append and its boundary
	// mark, and recovery replays them anyway (applied ⊇ fsync'd).
	Boundary types.Instance
}

// Persister is durable storage for one replica. Implementations must be
// safe for concurrent use: the hosting runtime appends from its event
// loop while status endpoints may call Recover-independent accessors,
// and the contract suite (storetest.Contract) exercises concurrent
// AppendEntry + StampSnapshot under the race detector.
//
// Durability contract: AppendEntry and MarkApplied may buffer;
// MarkApplied, StampSnapshot and Sync must not return until everything
// written before them is durable (fsync'd, for file-backed stores). The
// write-ahead discipline lives in the caller (sm.Applier persists an
// entry before applying it and marks boundaries after each applied
// instance), so "durable prefix" always means "prefix covered by the
// last successful MarkApplied/Sync".
type Persister interface {
	// AppendEntry appends one committed entry to the durable log.
	AppendEntry(e log.Entry) error
	// MarkApplied records that instances [0, boundary) are fully applied
	// and makes every prior write durable.
	MarkApplied(boundary types.Instance) error
	// StampSnapshot durably records the snapshot payload covering
	// entries [0, index) and instances [0, instance), replacing any
	// previous snapshot. The payload is opaque to the store (the sm
	// layer encodes and re-validates it).
	StampSnapshot(index int, instance types.Instance, payload []byte) error
	// TruncatePrefix retires entries with Index < index from the durable
	// log; they are covered by a stamped snapshot.
	TruncatePrefix(index int) error
	// Recover reconstructs the durable state. It is called once, before
	// any writes, on a freshly opened store; file-backed stores repair a
	// torn tail here (truncate at the first corrupt record).
	Recover() (Recovered, error)
	// Sync forces everything written so far to durable media.
	Sync() error
	// Close releases resources; the store is unusable afterwards.
	Close() error
}
