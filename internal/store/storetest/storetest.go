// Package storetest is the executable contract of store.Persister: one
// suite, run against every implementation (memory, file, and whatever
// backend comes next — mmap, S3), so a new backend inherits the same
// gate the built-in ones pass. The suite covers the append/recover
// round-trip, snapshot stamping and replacement, truncate-then-recover,
// torn-tail recovery (for backends that expose a Tear hook), and
// concurrent append + stamp under the race detector.
package storetest

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/log"
	"repro/internal/store"
	"repro/internal/types"
)

// Harness is one store under contract test.
type Harness struct {
	// P is the open Persister.
	P store.Persister
	// Reopen models a crash-restart: abandon P (without graceful
	// shutdown) and return a fresh Persister over the same durable
	// medium. The suite calls Recover on what it returns.
	Reopen func() store.Persister
	// Tear, if non-nil, corrupts the durable medium the way a crash
	// mid-write would (a partial final record). Backends without a
	// physical medium (memory) leave it nil and skip the torn-tail case.
	Tear func()
}

// Factory builds a fresh harness rooted in per-test storage.
type Factory func(t *testing.T) *Harness

// entry fabricates a deterministic test entry.
func entry(i int) log.Entry {
	return log.Entry{
		Index:    i,
		Instance: types.Instance(i / 2),
		Cmd:      types.Value(fmt.Sprintf("cmd-%04d-%s", i, "payload")),
	}
}

// Contract runs the full persistence contract against factory's stores.
func Contract(t *testing.T, factory Factory) {
	t.Run("EmptyRecover", func(t *testing.T) {
		h := factory(t)
		rec, err := h.P.Recover()
		if err != nil {
			t.Fatalf("recover on empty store: %v", err)
		}
		if rec.SnapPayload != nil || len(rec.Entries) != 0 || rec.Boundary != 0 {
			t.Fatalf("empty store recovered non-zero state: %+v", rec)
		}
	})

	t.Run("AppendRecoverRoundTrip", func(t *testing.T) {
		h := factory(t)
		if _, err := h.P.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		const n = 25
		for i := 0; i < n; i++ {
			if err := h.P.AppendEntry(entry(i)); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := h.P.MarkApplied(13); err != nil {
			t.Fatalf("mark: %v", err)
		}
		rec, err := h.Reopen().Recover()
		if err != nil {
			t.Fatalf("recover after reopen: %v", err)
		}
		if len(rec.Entries) != n {
			t.Fatalf("recovered %d entries, want %d", len(rec.Entries), n)
		}
		for i, e := range rec.Entries {
			if want := entry(i); e.Index != want.Index || e.Instance != want.Instance || e.Cmd != want.Cmd {
				t.Fatalf("entry %d round-tripped as %+v, want %+v", i, e, want)
			}
		}
		if rec.Boundary != 13 {
			t.Fatalf("recovered boundary %v, want 13", rec.Boundary)
		}
		if rec.SnapPayload != nil {
			t.Fatalf("phantom snapshot recovered: %d bytes", len(rec.SnapPayload))
		}
	})

	t.Run("SnapshotStampAndReplace", func(t *testing.T) {
		h := factory(t)
		if _, err := h.P.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if err := h.P.StampSnapshot(4, 2, []byte("snap-one")); err != nil {
			t.Fatalf("stamp: %v", err)
		}
		if err := h.P.StampSnapshot(9, 5, []byte("snap-two-later")); err != nil {
			t.Fatalf("restamp: %v", err)
		}
		rec, err := h.Reopen().Recover()
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if string(rec.SnapPayload) != "snap-two-later" {
			t.Fatalf("recovered payload %q, want the newest stamp", rec.SnapPayload)
		}
		if rec.SnapIndex != 9 || rec.SnapInstance != 5 {
			t.Fatalf("recovered snapshot position (%d, %v), want (9, 5)", rec.SnapIndex, rec.SnapInstance)
		}
		if rec.Boundary < 5 {
			t.Fatalf("boundary %v not covered by snapshot instance 5", rec.Boundary)
		}
	})

	t.Run("TruncateThenRecover", func(t *testing.T) {
		h := factory(t)
		if _, err := h.P.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		for i := 0; i < 10; i++ {
			if err := h.P.AppendEntry(entry(i)); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := h.P.StampSnapshot(6, 3, []byte("covers [0,6)")); err != nil {
			t.Fatalf("stamp: %v", err)
		}
		if err := h.P.TruncatePrefix(6); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		if err := h.P.MarkApplied(5); err != nil {
			t.Fatalf("mark: %v", err)
		}
		rec, err := h.Reopen().Recover()
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if len(rec.Entries) != 4 || rec.Entries[0].Index != 6 {
			t.Fatalf("recovered %d entries starting at %v, want 4 starting at index 6",
				len(rec.Entries), rec.Entries)
		}
		if string(rec.SnapPayload) != "covers [0,6)" {
			t.Fatalf("snapshot lost across truncate: %q", rec.SnapPayload)
		}
	})

	t.Run("TornFinalRecord", func(t *testing.T) {
		h := factory(t)
		if h.Tear == nil {
			t.Skip("backend has no physical medium to tear")
		}
		if _, err := h.P.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		for i := 0; i < 8; i++ {
			if err := h.P.AppendEntry(entry(i)); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := h.P.MarkApplied(4); err != nil {
			t.Fatalf("mark: %v", err)
		}
		h.Tear()
		p := h.Reopen()
		rec, err := p.Recover()
		if err != nil {
			t.Fatalf("recover over torn tail: %v", err)
		}
		if len(rec.Entries) != 8 || rec.Boundary != 4 {
			t.Fatalf("torn-tail recovery lost durable state: %d entries, boundary %v",
				len(rec.Entries), rec.Boundary)
		}
		// The repaired store must accept appends cleanly and round-trip
		// them — the tear must not leave a poisoned frame boundary.
		if err := p.AppendEntry(entry(8)); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := p.MarkApplied(5); err != nil {
			t.Fatalf("mark after repair: %v", err)
		}
		rec, err = h.Reopen().Recover()
		if err != nil {
			t.Fatalf("recover after repair: %v", err)
		}
		if len(rec.Entries) != 9 || rec.Boundary != 5 {
			t.Fatalf("post-repair appends not durable: %d entries, boundary %v",
				len(rec.Entries), rec.Boundary)
		}
	})

	t.Run("ConcurrentAppendAndStamp", func(t *testing.T) {
		h := factory(t)
		if _, err := h.P.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		const n = 200
		var wg sync.WaitGroup
		errs := make(chan error, 3)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := h.P.AppendEntry(entry(i)); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := h.P.StampSnapshot(i, types.Instance(i), []byte("concurrent stamp")); err != nil {
					errs <- err
					return
				}
				if err := h.P.MarkApplied(types.Instance(i)); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("concurrent writer: %v", err)
		}
		rec, err := h.Reopen().Recover()
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if len(rec.Entries) != n {
			t.Fatalf("recovered %d entries, want %d", len(rec.Entries), n)
		}
		for i, e := range rec.Entries {
			if e.Index != i {
				t.Fatalf("entry %d recovered out of order: index %d", i, e.Index)
			}
		}
	})
}
