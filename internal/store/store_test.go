package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/log"
	"repro/internal/store"
	"repro/internal/store/storetest"
	"repro/internal/types"
)

// TestMemoryContract runs the persistence contract against the
// in-memory store. Reopen hands back the same instance — the "medium"
// is the process heap, which is exactly what a simulated crash-restart
// reuses.
func TestMemoryContract(t *testing.T) {
	storetest.Contract(t, func(t *testing.T) *storetest.Harness {
		m := store.NewMemory()
		return &storetest.Harness{
			P:      m,
			Reopen: func() store.Persister { return m },
		}
	})
}

// TestFileContract runs the persistence contract against the
// append-only-file store, including the torn-tail case: Tear appends a
// partial CRC frame to the WAL, modeling a crash mid-write.
func TestFileContract(t *testing.T) {
	storetest.Contract(t, func(t *testing.T) *storetest.Harness {
		dir := t.TempDir()
		f, err := store.OpenFile(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		h := &storetest.Harness{P: f}
		h.Reopen = func() store.Persister {
			// No graceful close: a crash does not flush or unlock.
			nf, err := store.OpenFile(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			h.P = nf
			return nf
		}
		h.Tear = func() {
			w, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatalf("tear: %v", err)
			}
			// A plausible record head (type + a length promising more
			// bytes than follow) with half a payload: the classic
			// power-cut shape.
			if _, err := w.Write([]byte{1, 0xff, 0x00, 0x00, 0x00, 'h', 'a', 'l', 'f'}); err != nil {
				t.Fatalf("tear write: %v", err)
			}
			w.Close()
		}
		return h
	})
}

// TestFileTornCRC covers the second torn shape: a complete-looking frame
// whose CRC does not match (payload bytes lost to a partial sector
// write). Recovery must keep everything before it and truncate it away.
func TestFileTornCRC(t *testing.T) {
	dir := t.TempDir()
	f, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	e := log.Entry{Index: 0, Instance: 0, Cmd: types.Value("survivor")}
	if err := f.AppendEntry(e); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Append a full frame, then flip a payload byte so the CRC fails.
	path := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	tail := []byte{1, 24, 0, 0, 0}
	tail = append(tail, make([]byte, 24+4)...) // zero payload + zero CRC: mismatch
	if err := os.WriteFile(path, append(raw, tail...), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	nf, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := nf.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Entries) != 1 || rec.Entries[0].Cmd != e.Cmd {
		t.Fatalf("recovered %v, want the one intact entry", rec.Entries)
	}
	// The bad frame must be gone from disk after repair.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read repaired: %v", err)
	}
	if len(repaired) != len(raw) {
		t.Fatalf("repaired WAL is %d bytes, want %d (bad frame truncated)", len(repaired), len(raw))
	}
}

// TestFileSnapshotFallback: a corrupt newest snapshot file must not
// mask an older intact one — recovery falls back instead of failing.
func TestFileSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	f, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := f.StampSnapshot(3, 2, []byte("good-old")); err != nil {
		t.Fatalf("stamp: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Fabricate a newer snapshot file with a bad CRC (a rename that beat
	// the data to disk).
	bad := filepath.Join(dir, "snap-00000000000000000009-00000000000000000005")
	if err := os.WriteFile(bad, []byte("corrupt-no-valid-crc"), 0o644); err != nil {
		t.Fatalf("write bad snap: %v", err)
	}
	nf, err := store.OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := nf.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if string(rec.SnapPayload) != "good-old" || rec.SnapIndex != 3 {
		t.Fatalf("recovered snapshot (%q, %d), want the intact older one",
			rec.SnapPayload, rec.SnapIndex)
	}
}
