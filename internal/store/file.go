package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/log"
	"repro/internal/types"
)

// WAL record framing: every record is
//
//	u8  type ‖ u32 payload length L ‖ L payload bytes ‖ u32 CRC-32
//
// (little-endian, CRC over type+length+payload — IEEE polynomial). The
// CRC is the torn-tail detector: a crash mid-write leaves a final record
// whose frame is short or whose CRC mismatches, and recovery truncates
// the file at the last intact frame instead of failing. Anything BEFORE
// a bad frame is trusted — the file is append-only and fsync'd at
// boundaries, so a mid-file corruption is a disk fault, not a crash
// artifact, and recovery refuses it loudly rather than dropping silently.
const (
	recEntry    = 1 // u64 index ‖ u64 instance ‖ command bytes
	recBoundary = 2 // u64 applied-instance boundary
	recTruncate = 3 // u64 index: entries with Index < it are retired
)

// walHeaderLen is the fixed frame overhead: type+length before the
// payload, CRC after it.
const walHeaderLen = 1 + 4

// walCRCLen is the trailing checksum length.
const walCRCLen = 4

// maxWALRecord bounds one record's payload (16 MiB): recovery must not
// let a corrupt length field force an unbounded allocation.
const maxWALRecord = 16 << 20

// walName is the append-only log file inside a data directory.
const walName = "wal.log"

// snapPrefix names snapshot files: snapPrefix-<index>-<instance>.
const snapPrefix = "snap"

// rewriteSlack is how many retired entries may accumulate in the WAL
// before TruncatePrefix rewrites the file instead of only appending a
// truncate marker. Markers are cheap (one record per snapshot); the
// rewrite is what actually reclaims disk, so it runs once the dead
// prefix outweighs the live suffix by this many entries.
const rewriteSlack = 4096

// File is the append-only-file Persister: a CRC-framed WAL plus
// atomically-replaced snapshot files in one data directory. Layout:
//
//	<dir>/wal.log            append-only record log (see record framing)
//	<dir>/snap-<idx>-<inst>  snapshot payload, CRC-framed like a WAL
//	                         record, written to a temp file and renamed
//
// Writes are buffered by the OS; MarkApplied, StampSnapshot and Sync
// fsync. Recovery (Recover) tolerates a torn final WAL record and a
// torn snapshot file (it falls back to the newest intact one).
type File struct {
	mu    sync.Mutex
	dir   string
	wal   *os.File
	live  int  // entries in the WAL at or past the truncate floor
	dead  int  // entries below the truncate floor still physically present
	marks int  // boundary records since the last rewrite
	dirty bool // entry appends not yet sealed by an fsync
	// cache of the recovered/written state, so rewrites need no re-scan
	entries  []log.Entry
	boundary types.Instance
	snapIdx  int
	snapInst types.Instance
	hasSnap  bool
	closed   bool
}

var _ Persister = (*File)(nil)

// OpenFile opens (creating if needed) the file-backed store rooted at
// dir. Call Recover before writing: it repairs a torn tail and loads
// the caches the write paths maintain.
func OpenFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &File{dir: dir, wal: w}, nil
}

// Dir returns the data directory this store is rooted at.
func (f *File) Dir() string { return f.dir }

// appendRecord frames and writes one record at the WAL's current end.
func appendRecord(w *os.File, typ byte, payload []byte) error {
	buf := make([]byte, walHeaderLen+len(payload)+walCRCLen)
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[walHeaderLen:], payload)
	sum := crc32.ChecksumIEEE(buf[:walHeaderLen+len(payload)])
	binary.LittleEndian.PutUint32(buf[walHeaderLen+len(payload):], sum)
	_, err := w.Write(buf)
	return err
}

// encodeEntry flattens an entry into a record payload.
func encodeEntry(e log.Entry) []byte {
	p := make([]byte, 16+len(e.Cmd))
	binary.LittleEndian.PutUint64(p, uint64(e.Index))
	binary.LittleEndian.PutUint64(p[8:], uint64(e.Instance))
	copy(p[16:], e.Cmd)
	return p
}

// decodeEntry is encodeEntry's inverse; the bytes passed CRC so a
// failure here means a writer bug, not disk corruption.
func decodeEntry(p []byte) (log.Entry, error) {
	if len(p) < 16 {
		return log.Entry{}, fmt.Errorf("store: entry record of %d bytes is too short", len(p))
	}
	idx := binary.LittleEndian.Uint64(p)
	inst := binary.LittleEndian.Uint64(p[8:])
	if idx > 1<<62 || inst > 1<<62 {
		return log.Entry{}, fmt.Errorf("store: entry position out of range")
	}
	return log.Entry{
		Index:    int(idx),
		Instance: types.Instance(inst),
		Cmd:      types.Value(p[16:]),
	}, nil
}

// AppendEntry implements Persister. The write lands in the OS page
// cache; it becomes durable at the next MarkApplied/StampSnapshot/Sync,
// which is exactly the write-ahead cadence sm.Applier drives.
func (f *File) AppendEntry(e log.Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if err := appendRecord(f.wal, recEntry, encodeEntry(e)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f.entries = append(f.entries, e)
	f.live++
	f.dirty = true
	return nil
}

// MarkApplied implements Persister: boundary record + fsync. This is
// the durability point — after it returns, every entry appended before
// it survives a crash. Marks for boundaries that seal no new entries
// skip the fsync (losing such a mark in a crash only makes the restart
// resume a few empty instances earlier), which keeps an idle ⊥-churning
// replica from paying one disk flush per empty instance; a long idle
// stretch of marks is folded away by a WAL rewrite once it outgrows
// rewriteSlack records.
func (f *File) MarkApplied(boundary types.Instance) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: mark on closed store")
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(boundary))
	if err := appendRecord(f.wal, recBoundary, p[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if f.dirty {
		if err := f.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		f.dirty = false
	}
	if boundary > f.boundary {
		f.boundary = boundary
	}
	if f.marks++; f.marks >= rewriteSlack {
		return f.rewriteLocked()
	}
	return nil
}

// StampSnapshot implements Persister: the payload goes to a temp file,
// is fsync'd, renamed into place, and the directory is fsync'd so the
// name survives; then older snapshot files are deleted. The payload
// file reuses the WAL record framing (type recEntry is irrelevant here;
// the CRC is what recovery checks).
func (f *File) StampSnapshot(index int, instance types.Instance, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: stamp on closed store")
	}
	name := fmt.Sprintf("%s-%020d-%020d", snapPrefix, index, uint64(instance))
	tmp, err := os.CreateTemp(f.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err = tmp.Write(payload); err == nil {
		_, err = tmp.Write(tail[:])
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(f.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	// The new snapshot is durable under its final name; older ones are
	// now garbage (best-effort removal — a leftover is re-ignored by
	// Recover, which always picks the newest intact file).
	if names, err := filepath.Glob(filepath.Join(f.dir, snapPrefix+"-*")); err == nil {
		keep := filepath.Join(f.dir, name)
		for _, n := range names {
			if n != keep && !strings.Contains(filepath.Base(n), ".tmp-") {
				os.Remove(n)
			}
		}
	}
	f.snapIdx, f.snapInst, f.hasSnap = index, instance, true
	if instance > f.boundary {
		f.boundary = instance
	}
	return nil
}

// TruncatePrefix implements Persister. Normally it only appends a cheap
// truncate marker; once the dead prefix outgrows rewriteSlack entries
// the WAL is rewritten (temp file + rename, like snapshots) to reclaim
// the disk.
func (f *File) TruncatePrefix(index int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: truncate on closed store")
	}
	trim := 0
	for trim < len(f.entries) && f.entries[trim].Index < index {
		trim++
	}
	if trim > 0 {
		rest := make([]log.Entry, len(f.entries)-trim)
		copy(rest, f.entries[trim:])
		f.entries = rest
		f.live -= trim
		f.dead += trim
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(index))
	if err := appendRecord(f.wal, recTruncate, p[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if f.dead >= rewriteSlack {
		return f.rewriteLocked()
	}
	return nil
}

// rewriteLocked replaces the WAL with a compact one holding only the
// live suffix and the current boundary. Caller holds f.mu.
func (f *File) rewriteLocked() error {
	tmp, err := os.CreateTemp(f.dir, walName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	write := func() error {
		for _, e := range f.entries {
			if err := appendRecord(tmp, recEntry, encodeEntry(e)); err != nil {
				return err
			}
		}
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], uint64(f.boundary))
		if err := appendRecord(tmp, recBoundary, p[:]); err != nil {
			return err
		}
		return tmp.Sync()
	}
	err = write()
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(f.dir, walName)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	old := f.wal
	nw, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	old.Close()
	f.wal = nw
	f.dead = 0
	f.marks = 0
	f.dirty = false // the rewrite was fsync'd before the rename
	return nil
}

// Recover implements Persister: scan the WAL (repairing a torn tail),
// pick the newest intact snapshot file, and return the composition.
func (f *File) Recover() (Recovered, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Recovered{}, fmt.Errorf("store: recover on closed store")
	}
	raw, err := os.ReadFile(filepath.Join(f.dir, walName))
	if err != nil {
		return Recovered{}, fmt.Errorf("store: %w", err)
	}
	entries, boundary, good, err := scanWAL(raw)
	if err != nil {
		return Recovered{}, err
	}
	if good < len(raw) {
		// Torn tail: drop the partial record so future appends start at
		// a clean frame. The entries inside the torn record were never
		// covered by a boundary fsync, so dropping loses nothing durable.
		if err := f.wal.Truncate(int64(good)); err != nil {
			return Recovered{}, fmt.Errorf("store: %w", err)
		}
		if err := f.wal.Sync(); err != nil {
			return Recovered{}, fmt.Errorf("store: %w", err)
		}
	}
	rec := Recovered{Entries: entries, Boundary: boundary}
	idx, inst, payload, ok, err := f.newestSnapshot()
	if err != nil {
		return Recovered{}, err
	}
	if ok {
		rec.SnapPayload, rec.SnapIndex, rec.SnapInstance = payload, idx, inst
		if inst > rec.Boundary {
			rec.Boundary = inst
		}
	}
	f.entries = append([]log.Entry(nil), entries...)
	f.boundary = rec.Boundary
	f.live, f.dead = len(entries), 0
	if ok {
		f.snapIdx, f.snapInst, f.hasSnap = idx, inst, true
	}
	return rec, nil
}

// scanWAL walks the record stream, returning the live entries, the
// highest boundary, and the byte offset of the first bad frame (==
// len(raw) when the whole file is intact). Only a TAIL fault is
// tolerated: a bad frame with further intact records behind it would
// mean mid-file corruption, but the scanner cannot resynchronize past a
// bad length field anyway, so every bad frame is by construction the
// scan's end — the caller decides whether truncating there is safe.
func scanWAL(raw []byte) (entries []log.Entry, boundary types.Instance, good int, err error) {
	off := 0
	for {
		if off == len(raw) {
			return entries, boundary, off, nil
		}
		if len(raw)-off < walHeaderLen+walCRCLen {
			return entries, boundary, off, nil // torn header
		}
		typ := raw[off]
		plen := binary.LittleEndian.Uint32(raw[off+1:])
		if plen > maxWALRecord || walHeaderLen+int(plen)+walCRCLen > len(raw)-off {
			return entries, boundary, off, nil // torn or absurd length
		}
		end := off + walHeaderLen + int(plen)
		sum := binary.LittleEndian.Uint32(raw[end:])
		if crc32.ChecksumIEEE(raw[off:end]) != sum {
			return entries, boundary, off, nil // torn payload/CRC
		}
		payload := raw[off+walHeaderLen : end]
		switch typ {
		case recEntry:
			e, derr := decodeEntry(payload)
			if derr != nil {
				return nil, 0, 0, derr
			}
			// Copy out of the file buffer so the big read is collectable.
			e.Cmd = types.Value(append([]byte(nil), e.Cmd...))
			entries = append(entries, e)
		case recBoundary:
			if len(payload) != 8 {
				return nil, 0, 0, fmt.Errorf("store: boundary record of %d bytes", len(payload))
			}
			if b := types.Instance(binary.LittleEndian.Uint64(payload)); b > boundary {
				boundary = b
			}
		case recTruncate:
			if len(payload) != 8 {
				return nil, 0, 0, fmt.Errorf("store: truncate record of %d bytes", len(payload))
			}
			floor := int(binary.LittleEndian.Uint64(payload))
			trim := 0
			for trim < len(entries) && entries[trim].Index < floor {
				trim++
			}
			entries = entries[trim:]
		default:
			return nil, 0, 0, fmt.Errorf("store: unknown WAL record type %d", typ)
		}
		off = end + walCRCLen
	}
}

// newestSnapshot loads the intact snapshot file with the highest
// (index, instance), skipping torn or corrupt ones.
func (f *File) newestSnapshot() (index int, instance types.Instance, payload []byte, ok bool, err error) {
	names, err := filepath.Glob(filepath.Join(f.dir, snapPrefix+"-*"))
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("store: %w", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded: lexicographic == numeric
	for _, n := range names {
		base := filepath.Base(n)
		if strings.Contains(base, ".tmp-") {
			continue
		}
		var idx, inst uint64
		if _, serr := fmt.Sscanf(base, snapPrefix+"-%020d-%020d", &idx, &inst); serr != nil {
			continue
		}
		raw, rerr := os.ReadFile(n)
		if rerr != nil || len(raw) < walCRCLen {
			continue
		}
		body := raw[:len(raw)-walCRCLen]
		sum := binary.LittleEndian.Uint32(raw[len(raw)-walCRCLen:])
		if crc32.ChecksumIEEE(body) != sum {
			continue // torn write that still got renamed? fall back
		}
		return int(idx), types.Instance(inst), body, true, nil
	}
	return 0, 0, nil, false, nil
}

// Sync implements Persister.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("store: sync on closed store")
	}
	if err := f.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f.dirty = false
	return nil
}

// Close implements Persister.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if err := f.wal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed name is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Some filesystems refuse directory fsync; the rename itself is
	// still ordered after the file's own fsync, so degrade silently.
	d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
