package runner

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/kv"
	"repro/internal/log"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sm"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/xtrace"
)

// KVSpec describes one replicated-KV execution on the simulator: every
// correct process runs the full service stack — log.Engine ordering
// commands, sm.Applier consuming them, kv.Store holding state — and the
// same client workload is submitted to all of them (clients broadcast
// requests, the classic BFT model).
//
// Unlike LogSpec, the workload may contain duplicate submissions: client
// retries are the point of the session layer, and the whole stack must
// stay exactly-once under them.
type KVSpec struct {
	// Params are the (n, t, m) resilience parameters (m is ignored: log
	// instances run the ⊥-validity variant).
	Params types.Params
	// Topology is the synchrony matrix (nil = fully asynchronous).
	Topology *network.Topology
	// Policy draws async-channel delays (nil = uniform 1–20 ms).
	Policy network.DelayPolicy
	// Adv optionally adversarially overrides async delays.
	Adv network.Adversary
	// FIFO enforces per-channel ordering.
	FIFO bool
	// Seed drives all randomness.
	Seed int64
	// Record keeps the trace log.
	Record bool
	// Commands is the client workload in submission order. Duplicates
	// (retries) are allowed; the reserved key prefixes of the kv codec
	// keep them well-formed.
	Commands []kv.Command
	// SubmitEvery staggers the workload: command k is submitted at time
	// k·SubmitEvery (0 = everything at time 0).
	SubmitEvery types.Duration
	// Byzantine maps faulty processes to behaviors.
	Byzantine map[types.ProcID]harness.Behavior
	// Log carries the engine knobs (Engine, BatchSize, Pipeline, MaxLead).
	// Env, Target, OnCommit and OnApply are set by the runner.
	Log log.Config
	// SnapshotEvery is the applier's snapshot cadence in entries
	// (0 = snapshots off).
	SnapshotEvery int
	// Compact retires pre-snapshot state after each snapshot. Requires
	// SnapshotEvery > 0.
	Compact bool
	// CompactKeep retains this many applied instances below the snapshot
	// boundary (echo service margin for mildly lagging peers; default 4).
	CompactKeep types.Instance
	// RecoverAt schedules crash-recoveries: at each mapped virtual time
	// the process discards its live state and rebuilds it from its latest
	// snapshot plus the retained log suffix (sm.Applier.Recover).
	RecoverAt map[types.ProcID]types.Time
	// Transfer enables peer-to-peer snapshot state transfer (sm.Transfer)
	// on every correct replica: a replica that falls more than MaxLead
	// instances behind fetches a corroborated peer snapshot and resumes
	// from its boundary instead of stalling forever. Requires
	// SnapshotEvery > 0 (there must be snapshots to serve). Off by
	// default: the transfer layer arms probe timers and can inject
	// request/response traffic, which perturbs digest-pinned schedules.
	Transfer bool
	// TransferRetry and TransferProbe override sm.TransferConfig's
	// RetryEvery/StallProbe cadences (0 = the sm defaults).
	TransferRetry types.Duration
	TransferProbe types.Duration
	// Target, when > 0, overrides the stop rule with a raw entry-count
	// target (log.Config.Target semantics). The default stop rule counts
	// DISTINCT workload commands instead: under compaction a forgotten
	// duplicate can legitimately commit twice, and raw entry counts would
	// let engines close before every distinct command is ordered.
	Target int
	// SnapshotRefresh forwards to sm.Config.RefreshEvery: re-stamp the
	// snapshot every SnapshotRefresh applied instances even when no new
	// entries landed since the last one, so long-idle clusters keep a
	// fresh transfer boundary for rejoining replicas (0 = off).
	SnapshotRefresh types.Instance
	// Obs, if non-nil, attaches live telemetry to every correct replica:
	// log/sm/kv/transfer/RB/dedup bundles labeled proc="<id>" plus one
	// shared commit-latency histogram (submission → first local commit).
	// Passive: an observed run is trace-identical to an unobserved one.
	Obs *obs.Registry
	// Trace, if non-nil, attaches causal command tracing per correct
	// replica (see LogSpec.Trace): spans cover submit → batch →
	// consensus → apply, with RB phase transitions. Passive.
	Trace *TraceSpec
	// Deadline bounds virtual time (0 = run to drain).
	Deadline types.Time
	// MaxEvents bounds the number of simulation events (0 = unlimited).
	MaxEvents uint64
}

// KVResult is the outcome of one replicated-KV execution.
type KVResult struct {
	LogResult
	// Stores holds every correct process's live state machine.
	Stores map[types.ProcID]*kv.Store
	// Appliers holds the sm layer of every correct process.
	Appliers map[types.ProcID]*sm.Applier
	// StateDigests is the SHA-256 of each correct process's final machine
	// state — byte-identical state ⇒ identical digests.
	StateDigests map[types.ProcID][32]byte
	// SnapshotLog records every snapshot each correct process took, in
	// order (Index/Instance/Digest; Data omitted).
	SnapshotLog map[types.ProcID][]sm.Snapshot
	// RecoverErrs records failed Recover calls (nil entries are success).
	RecoverErrs map[types.ProcID]error
	// Transfers maps each correct process to the sm.Transfer layer's
	// install count (snapshots adopted from peers); TransferServed counts
	// snapshots it served to peers. Both empty unless KVSpec.Transfer.
	Transfers      map[types.ProcID]int
	TransferServed map[types.ProcID]int
	// Covered maps each correct process to the number of DISTINCT
	// workload commands it committed (duplicates and forged commands
	// excluded); Distinct is the workload's distinct-command count.
	Covered  map[types.ProcID]int
	Distinct int
}

// MinCovered returns the smallest distinct-command coverage among
// correct processes.
func (r *KVResult) MinCovered() int {
	min := -1
	for _, id := range r.Correct {
		if n := r.Covered[id]; min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// CoveredAll reports whether every correct process committed every
// distinct workload command (the KV termination property — robust to
// post-compaction duplicate commits, unlike raw entry counts).
func (r *KVResult) CoveredAll() bool {
	return len(r.Correct) > 0 && r.MinCovered() >= r.Distinct
}

// StatesAgree reports whether every pair of correct processes with the
// same applied count has the same state digest, and that processes at
// different applied counts at least took byte-identical snapshots at
// common snapshot indexes (SnapshotsAgree).
func (r *KVResult) StatesAgree() bool {
	byApplied := make(map[int][32]byte)
	for _, id := range r.Correct {
		a := r.Appliers[id]
		if a == nil {
			return false
		}
		d := r.StateDigests[id]
		if prev, ok := byApplied[a.Applied()]; ok && prev != d {
			return false
		}
		byApplied[a.Applied()] = d
	}
	return len(r.Correct) > 0 && r.SnapshotsAgree()
}

// SnapshotsAgree reports whether every snapshot index reached by two or
// more correct processes produced byte-identical snapshots (equal
// digests) everywhere.
func (r *KVResult) SnapshotsAgree() bool {
	byIndex := make(map[int][32]byte)
	for _, id := range r.Correct {
		for _, s := range r.SnapshotLog[id] {
			if prev, ok := byIndex[s.Index]; ok && prev != s.Digest {
				return false
			}
			byIndex[s.Index] = s.Digest
		}
	}
	return true
}

// ReferenceDivergence replays the reference process's committed log
// through a fresh single-node store and compares digests with the live
// replicated state: any difference means the applier path diverged from
// the sequential semantics. Returns "" when they match. The reference is
// the first correct process with a FULL history (first entry at index
// 0): a replica that joined via snapshot transfer holds only a suffix
// locally and cannot be replayed from scratch — if no full-history
// replica exists the check is vacuous.
func (r *KVResult) ReferenceDivergence() string {
	if len(r.Correct) == 0 {
		return "no correct processes"
	}
	ref := types.NoProc
	for _, id := range r.Correct {
		if lg := r.Logs[id]; len(lg) > 0 && lg[0].Index == 0 {
			ref = id
			break
		}
	}
	if ref == types.NoProc {
		return "" // every correct replica transferred in; nothing to replay
	}
	oracle := kv.NewStore()
	for _, e := range r.Logs[ref] {
		oracle.Apply(e.Cmd)
	}
	app := r.Appliers[ref]
	if app == nil {
		return "no applier at reference process"
	}
	want := sm.Digest(oracle)
	if got := r.StateDigests[ref]; got != want {
		return fmt.Sprintf("replica %v state %x diverges from sequential replay %x", ref, got[:8], want[:8])
	}
	return ""
}

// RunKV executes the spec.
func RunKV(spec KVSpec) (*KVResult, error) {
	p := spec.Params
	if err := p.Validate(true); err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	if len(spec.Byzantine) > p.T {
		return nil, fmt.Errorf("runner: %d Byzantine processes exceed t=%d", len(spec.Byzantine), p.T)
	}
	if len(spec.Commands) == 0 {
		return nil, fmt.Errorf("runner: empty KV workload")
	}
	if spec.Compact && spec.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("runner: Compact requires SnapshotEvery > 0")
	}
	if spec.Log.AutoCompactLag > 0 {
		// Snapshot-driven compaction is the only safe mode under a state
		// machine: AutoCompactLag trims entries without a covering
		// snapshot, which would leave Recover with a gap and poison the
		// applier.
		return nil, fmt.Errorf("runner: AutoCompactLag is a pure-log knob; KV runs compact via SnapshotEvery+Compact")
	}
	if spec.CompactKeep <= 0 {
		spec.CompactKeep = 4
	}
	if spec.Transfer && spec.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("runner: Transfer requires SnapshotEvery > 0 (peers serve snapshots)")
	}
	encoded := make([]types.Value, len(spec.Commands))
	distinct := make(map[types.Value]struct{}, len(spec.Commands))
	for i, c := range spec.Commands {
		encoded[i] = c.Encode()
		distinct[encoded[i]] = struct{}{}
	}
	w, err := harness.New(harness.Config{
		Params:   p,
		Topology: spec.Topology,
		Policy:   spec.Policy,
		Adv:      spec.Adv,
		FIFO:     spec.FIFO,
		Seed:     spec.Seed,
		Record:   spec.Record,
		BotOK:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}

	res := &KVResult{
		LogResult: LogResult{
			Logs:    make(map[types.ProcID][]log.Entry),
			Engines: make(map[types.ProcID]*log.Engine),
		},
		Stores:         make(map[types.ProcID]*kv.Store),
		Appliers:       make(map[types.ProcID]*sm.Applier),
		StateDigests:   make(map[types.ProcID][32]byte),
		SnapshotLog:    make(map[types.ProcID][]sm.Snapshot),
		RecoverErrs:    make(map[types.ProcID]error),
		Transfers:      make(map[types.ProcID]int),
		TransferServed: make(map[types.ProcID]int),
		Covered:        make(map[types.ProcID]int),
		Distinct:       len(distinct),
	}
	if spec.Trace != nil {
		res.Tracers = make(map[types.ProcID]*xtrace.Tracer)
		res.Stages = obs.NewStageMetrics(spec.Obs, "")
	}
	var submitAt map[types.Value]types.Time
	if spec.Obs != nil {
		res.CommitLatency = obs.NewCommitLatency(spec.Obs)
		submitAt = make(map[types.Value]types.Time, len(distinct))
		for k, c := range encoded {
			if _, dup := submitAt[c]; !dup { // retries keep the first submit time
				submitAt[c] = types.Time(types.Duration(k) * spec.SubmitEvery)
			}
		}
	}
	trs := make(map[types.ProcID]*sm.Transfer)
	for _, id := range p.AllProcs() {
		id := id
		if b, ok := spec.Byzantine[id]; ok {
			if err := w.SetBehavior(id, b); err != nil {
				return nil, fmt.Errorf("runner: %w", err)
			}
			continue
		}
		res.Correct = append(res.Correct, id)
		var engErr error
		err := w.SetBehavior(id, func(env proto.Env) proto.Handler {
			store := kv.NewStore()
			var labels string
			if spec.Obs != nil {
				labels = procLabel(id)
				store.SetMetrics(obs.NewKVMetrics(spec.Obs, labels))
			}
			var tracer *xtrace.Tracer
			if spec.Trace != nil {
				tracer = xtrace.New(xtrace.Config{
					Proc:     id,
					Now:      env.Now,
					Recorder: xtrace.NewRecorder(spec.Trace.cap()),
					Stages:   res.Stages,
				})
				res.Tracers[id] = tracer
			}
			var eng *log.Engine
			app, err := sm.New(sm.Config{
				Machine:       store,
				SnapshotEvery: spec.SnapshotEvery,
				RefreshEvery:  spec.SnapshotRefresh,
				Metrics:       obs.NewSMMetrics(spec.Obs, labels),
				Tracer:        tracer,
				// The retained-suffix capture rides every snapshot so this
				// replica can serve complete transfer payloads (snapshot +
				// dedup window); cheap (CompactKeep-sized) when compaction
				// is on.
				RetainedEntries: func() []log.Entry {
					if eng == nil {
						return nil
					}
					return eng.Entries()
				},
				OnSnapshot: func(s sm.Snapshot) {
					res.SnapshotLog[id] = append(res.SnapshotLog[id],
						sm.Snapshot{Index: s.Index, Instance: s.Instance, Digest: s.Digest})
					env.Trace().Emit(trace.Event{
						At: env.Now(), Kind: trace.KindKVSnapshot, Proc: id,
						Aux: fmt.Sprintf("idx=%d inst=%v digest=%x", s.Index, s.Instance, s.Digest[:8]),
					})
					if spec.Compact && eng != nil {
						eng.Compact(s.Instance - spec.CompactKeep)
					}
				},
			})
			if err != nil {
				engErr = err
				return proto.HandlerFunc(func(types.ProcID, proto.Message) {})
			}
			cfg := spec.Log
			cfg.Env = env
			cfg.Target = spec.Target
			cfg.Tracer = tracer
			if spec.Obs != nil {
				cfg.Metrics = obs.NewLogMetrics(spec.Obs, labels)
				cfg.Engine.RBMetrics = obs.NewRBMetrics(spec.Obs, labels)
			}
			seen := make(map[types.Value]struct{}, len(distinct))
			cfg.OnCommit = func(e log.Entry) {
				res.Logs[id] = append(res.Logs[id], e)
				app.OnCommit(e)
				// Default stop rule: close once every distinct workload
				// command committed. Duplicate re-commits (possible after
				// compaction forgets the content dedup) and forged
				// commands from Byzantine batches don't count toward it —
				// a deterministic function of the applied prefix, so
				// instance starts stay symmetric.
				if _, workload := distinct[e.Cmd]; !workload {
					return
				}
				if _, dup := seen[e.Cmd]; dup {
					return
				}
				seen[e.Cmd] = struct{}{}
				res.Covered[id] = len(seen)
				if res.CommitLatency != nil {
					res.CommitLatency.Observe(int64(env.Now() - submitAt[e.Cmd]))
				}
				if spec.Target <= 0 && len(seen) >= len(distinct) && eng != nil {
					eng.Close()
				}
			}
			cfg.OnApply = app.OnApply
			var tr *sm.Transfer
			if spec.Transfer {
				// Late-bound: tr exists only after the engine it wraps.
				cfg.OnDroppedAhead = func(i types.Instance) {
					if tr != nil {
						tr.OnDroppedAhead(i)
					}
				}
			}
			eng, err = log.New(cfg)
			if err != nil {
				engErr = err
				return proto.HandlerFunc(func(types.ProcID, proto.Message) {})
			}
			handler := proto.Handler(eng)
			if spec.Transfer {
				tr, err = sm.NewTransfer(sm.TransferConfig{
					Env:        env,
					Applier:    app,
					Log:        eng,
					Next:       eng,
					RetryEvery: spec.TransferRetry,
					StallProbe: spec.TransferProbe,
					Metrics:    obs.NewTransferMetrics(spec.Obs, labels),
				})
				if err != nil {
					engErr = err
					return proto.HandlerFunc(func(types.ProcID, proto.Message) {})
				}
				trs[id] = tr
				handler = tr
			}
			res.Engines[id] = eng
			res.Stores[id] = store
			res.Appliers[id] = app
			for k, c := range encoded {
				c := c
				env.SetTimer(types.Duration(k)*spec.SubmitEvery, func() { _ = eng.Submit(c) })
			}
			if at, ok := spec.RecoverAt[id]; ok {
				env.SetTimer(types.Duration(at), func() {
					if err := app.Recover(eng.Entries()); err != nil {
						res.RecoverErrs[id] = err
						return
					}
					env.Trace().Emit(trace.Event{
						At: env.Now(), Kind: trace.KindKVRecover, Proc: id,
						Aux: fmt.Sprintf("replayed-to=%d", app.Applied()),
					})
				})
			}
			env.SetTimer(0, func() {
				if err := eng.Start(); err != nil {
					engErr = err
				}
			})
			return handler
		})
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		if engErr != nil {
			return nil, fmt.Errorf("runner: kv replica %v: %w", id, engErr)
		}
		wireRetirer(w, id, res.Engines[id])
		wireObs(w, id, spec.Obs)
	}

	res.Stop = w.Run(spec.Deadline, spec.MaxEvents)
	res.End = w.Sched.Now()
	res.Events = w.Sched.Executed
	res.Compactions = w.Sched.Compactions
	res.Messages = w.Net.Sent()
	res.Duplicates = w.DroppedDuplicates()
	res.Log = w.Log
	for _, id := range res.Correct {
		if eng := res.Engines[id]; eng != nil && eng.Err() != nil {
			return nil, fmt.Errorf("runner: kv replica %v: %w", id, eng.Err())
		}
		if app := res.Appliers[id]; app != nil {
			res.StateDigests[id] = app.StateDigest()
			if err := app.Err(); err != nil && res.RecoverErrs[id] == nil {
				// A poisoned applier (failed Recover after state mutation)
				// stopped applying; surface it as a recovery failure.
				res.RecoverErrs[id] = err
			}
		}
		if tr := trs[id]; tr != nil {
			res.Transfers[id] = tr.Installs()
			res.TransferServed[id] = tr.Served()
		}
	}
	return res, nil
}
