package runner

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/harness"
	"repro/internal/kv"
	"repro/internal/log"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sm"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/xtrace"
)

// KVSpec describes one replicated-KV execution on the simulator: every
// correct process runs the full service stack — log.Engine ordering
// commands, sm.Applier consuming them, kv.Store holding state — and the
// same client workload is submitted to all of them (clients broadcast
// requests, the classic BFT model).
//
// Unlike LogSpec, the workload may contain duplicate submissions: client
// retries are the point of the session layer, and the whole stack must
// stay exactly-once under them.
type KVSpec struct {
	// Params are the (n, t, m) resilience parameters (m is ignored: log
	// instances run the ⊥-validity variant).
	Params types.Params
	// Topology is the synchrony matrix (nil = fully asynchronous).
	Topology *network.Topology
	// Policy draws async-channel delays (nil = uniform 1–20 ms).
	Policy network.DelayPolicy
	// Adv optionally adversarially overrides async delays.
	Adv network.Adversary
	// FIFO enforces per-channel ordering.
	FIFO bool
	// Seed drives all randomness.
	Seed int64
	// Record keeps the trace log.
	Record bool
	// Commands is the client workload in submission order. Duplicates
	// (retries) are allowed; the reserved key prefixes of the kv codec
	// keep them well-formed.
	Commands []kv.Command
	// SubmitEvery staggers the workload: command k is submitted at time
	// k·SubmitEvery (0 = everything at time 0).
	SubmitEvery types.Duration
	// Byzantine maps faulty processes to behaviors.
	Byzantine map[types.ProcID]harness.Behavior
	// Log carries the engine knobs (Engine, BatchSize, Pipeline, MaxLead).
	// Env, Target, OnCommit and OnApply are set by the runner.
	Log log.Config
	// SnapshotEvery is the applier's snapshot cadence in entries
	// (0 = snapshots off).
	SnapshotEvery int
	// Compact retires pre-snapshot state after each snapshot. Requires
	// SnapshotEvery > 0.
	Compact bool
	// CompactKeep retains this many applied instances below the snapshot
	// boundary (echo service margin for mildly lagging peers; default 4).
	CompactKeep types.Instance
	// RecoverAt schedules crash-recoveries: at each mapped virtual time
	// the process discards its live state and rebuilds it from its latest
	// snapshot plus the retained log suffix (sm.Applier.Recover).
	RecoverAt map[types.ProcID]types.Time
	// Durable attaches a per-replica durable store (store.Memory) to
	// every correct replica: committed entries are write-ahead logged,
	// applied boundaries marked, and snapshots stamped (sm.Config.Persist)
	// before application proceeds, so a simulated crash-restart can
	// rebuild the replica from its own "disk" (sm.Boot). Off by default —
	// with it off the stack runs the exact pre-persistence code path.
	Durable bool
	// CrashRestart schedules simulated power failures: at each mapped
	// virtual time the process is powered off (harness.World.Kill — its
	// dispatcher drops, outbound sends are fenced, pending timer callbacks
	// are voided) and RestartDelay later rebuilt as a FRESH incarnation
	// that boots from its durable store (sm.Boot + log.Engine.Resume),
	// not from a peer snapshot transfer. Requires Durable. Unlike
	// RecoverAt, which rebuilds only the applier in place, this loses ALL
	// volatile state: engine, dedup dispatcher, transfer layer, timers.
	// The rebooted incarnation re-submits the whole workload (commit
	// dedup drops what already landed) because the crashed incarnation's
	// pending commands died with it.
	CrashRestart map[types.ProcID]types.Time
	// RestartDelay is the downtime between power-off and reboot
	// (default 25ms of virtual time).
	RestartDelay types.Duration
	// Transfer enables peer-to-peer snapshot state transfer (sm.Transfer)
	// on every correct replica: a replica that falls more than MaxLead
	// instances behind fetches a corroborated peer snapshot and resumes
	// from its boundary instead of stalling forever. Requires
	// SnapshotEvery > 0 (there must be snapshots to serve). Off by
	// default: the transfer layer arms probe timers and can inject
	// request/response traffic, which perturbs digest-pinned schedules.
	Transfer bool
	// TransferRetry and TransferProbe override sm.TransferConfig's
	// RetryEvery/StallProbe cadences (0 = the sm defaults).
	TransferRetry types.Duration
	TransferProbe types.Duration
	// Target, when > 0, overrides the stop rule with a raw entry-count
	// target (log.Config.Target semantics). The default stop rule counts
	// DISTINCT workload commands instead: under compaction a forgotten
	// duplicate can legitimately commit twice, and raw entry counts would
	// let engines close before every distinct command is ordered.
	Target int
	// SnapshotRefresh forwards to sm.Config.RefreshEvery: re-stamp the
	// snapshot every SnapshotRefresh applied instances even when no new
	// entries landed since the last one, so long-idle clusters keep a
	// fresh transfer boundary for rejoining replicas (0 = off).
	SnapshotRefresh types.Instance
	// Obs, if non-nil, attaches live telemetry to every correct replica:
	// log/sm/kv/transfer/RB/dedup bundles labeled proc="<id>" plus one
	// shared commit-latency histogram (submission → first local commit).
	// Passive: an observed run is trace-identical to an unobserved one.
	Obs *obs.Registry
	// Trace, if non-nil, attaches causal command tracing per correct
	// replica (see LogSpec.Trace): spans cover submit → batch →
	// consensus → apply, with RB phase transitions. Passive.
	Trace *TraceSpec
	// Deadline bounds virtual time (0 = run to drain).
	Deadline types.Time
	// MaxEvents bounds the number of simulation events (0 = unlimited).
	MaxEvents uint64
}

// KVResult is the outcome of one replicated-KV execution.
type KVResult struct {
	LogResult
	// Stores holds every correct process's live state machine.
	Stores map[types.ProcID]*kv.Store
	// Appliers holds the sm layer of every correct process.
	Appliers map[types.ProcID]*sm.Applier
	// StateDigests is the SHA-256 of each correct process's final machine
	// state — byte-identical state ⇒ identical digests.
	StateDigests map[types.ProcID][32]byte
	// SnapshotLog records every snapshot each correct process took, in
	// order (Index/Instance/Digest; Data omitted).
	SnapshotLog map[types.ProcID][]sm.Snapshot
	// RecoverErrs records failed Recover calls (nil entries are success).
	RecoverErrs map[types.ProcID]error
	// Transfers maps each correct process to the sm.Transfer layer's
	// install count (snapshots adopted from peers); TransferServed counts
	// snapshots it served to peers. Both empty unless KVSpec.Transfer.
	Transfers      map[types.ProcID]int
	TransferServed map[types.ProcID]int
	// Covered maps each correct process to the number of DISTINCT
	// workload commands it committed (duplicates and forged commands
	// excluded); Distinct is the workload's distinct-command count.
	Covered  map[types.ProcID]int
	Distinct int
	// Durables maps each correct replica to its durable store (only with
	// KVSpec.Durable); it survives simulated crashes, so post-run checks
	// can re-Recover it (DurablePrefix).
	Durables map[types.ProcID]*store.Memory
	// Boots records what each crash-restarted replica recovered at reboot
	// time (keys of KVSpec.CrashRestart); BootErrs records reboots that
	// failed — the replica stays powered off for the rest of the run.
	Boots    map[types.ProcID]sm.BootStats
	BootErrs map[types.ProcID]error
}

// MinCovered returns the smallest distinct-command coverage among
// correct processes.
func (r *KVResult) MinCovered() int {
	min := -1
	for _, id := range r.Correct {
		if n := r.Covered[id]; min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// CoveredAll reports whether every correct process committed every
// distinct workload command (the KV termination property — robust to
// post-compaction duplicate commits, unlike raw entry counts).
func (r *KVResult) CoveredAll() bool {
	return len(r.Correct) > 0 && r.MinCovered() >= r.Distinct
}

// StatesAgree reports whether every pair of correct processes with the
// same applied count has the same state digest, and that processes at
// different applied counts at least took byte-identical snapshots at
// common snapshot indexes (SnapshotsAgree).
func (r *KVResult) StatesAgree() bool {
	byApplied := make(map[int][32]byte)
	for _, id := range r.Correct {
		a := r.Appliers[id]
		if a == nil {
			return false
		}
		d := r.StateDigests[id]
		if prev, ok := byApplied[a.Applied()]; ok && prev != d {
			return false
		}
		byApplied[a.Applied()] = d
	}
	return len(r.Correct) > 0 && r.SnapshotsAgree()
}

// SnapshotsAgree reports whether every snapshot index reached by two or
// more correct processes produced byte-identical snapshots (equal
// digests) everywhere.
func (r *KVResult) SnapshotsAgree() bool {
	byIndex := make(map[int][32]byte)
	for _, id := range r.Correct {
		for _, s := range r.SnapshotLog[id] {
			if prev, ok := byIndex[s.Index]; ok && prev != s.Digest {
				return false
			}
			byIndex[s.Index] = s.Digest
		}
	}
	return true
}

// ReferenceDivergence replays the reference process's committed log
// through a fresh single-node store and compares digests with the live
// replicated state: any difference means the applier path diverged from
// the sequential semantics. Returns "" when they match. The reference is
// the first correct process with a FULL history (first entry at index
// 0): a replica that joined via snapshot transfer holds only a suffix
// locally and cannot be replayed from scratch — if no full-history
// replica exists the check is vacuous.
func (r *KVResult) ReferenceDivergence() string {
	if len(r.Correct) == 0 {
		return "no correct processes"
	}
	ref := types.NoProc
	for _, id := range r.Correct {
		if lg := r.Logs[id]; len(lg) > 0 && lg[0].Index == 0 {
			ref = id
			break
		}
	}
	if ref == types.NoProc {
		return "" // every correct replica transferred in; nothing to replay
	}
	oracle := kv.NewStore()
	for _, e := range r.Logs[ref] {
		oracle.Apply(e.Cmd)
	}
	app := r.Appliers[ref]
	if app == nil {
		return "no applier at reference process"
	}
	want := sm.Digest(oracle)
	if got := r.StateDigests[ref]; got != want {
		return fmt.Sprintf("replica %v state %x diverges from sequential replay %x", ref, got[:8], want[:8])
	}
	return ""
}

// DurablePrefix checks the persistence invariant after a durable run:
// "applied ⊇ fsync'd" — a replica's disk never claims more than its
// machine (and the cluster) actually did. Concretely, for every durable
// store re-Recovered after the run: the durable applied boundary does
// not exceed the replica's applied instance frontier, the stamped
// snapshot decodes (digest round-trip) and sits at or below the
// replica's applied entry count, and every WAL entry byte-matches the
// entry the cluster committed at that index. Returns "" when the
// invariant holds; vacuous without KVSpec.Durable.
func (r *KVResult) DurablePrefix() string {
	if len(r.Durables) == 0 {
		return ""
	}
	// Reference: the union of every correct replica's committed log.
	// Overlaps agree by total order (StatesAgree checks that separately),
	// so the union is THE committed sequence.
	ref := make(map[int]log.Entry)
	for _, id := range r.Correct {
		for _, e := range r.Logs[id] {
			ref[e.Index] = e
		}
	}
	for _, id := range r.Correct {
		p := r.Durables[id]
		if p == nil {
			continue
		}
		rec, err := p.Recover()
		if err != nil {
			return fmt.Sprintf("replica %v: recover: %v", id, err)
		}
		if eng := r.Engines[id]; eng != nil && rec.Boundary > eng.Applied() {
			return fmt.Sprintf("replica %v: durable boundary %v exceeds applied frontier %v",
				id, rec.Boundary, eng.Applied())
		}
		if rec.SnapPayload != nil {
			s, _, _, derr := sm.DecodeTransfer(types.Value(rec.SnapPayload))
			if derr != nil {
				return fmt.Sprintf("replica %v: stamped snapshot: %v", id, derr)
			}
			if a := r.Appliers[id]; a != nil && s.Index > a.Applied() {
				return fmt.Sprintf("replica %v: stamped snapshot index %d exceeds applied count %d",
					id, s.Index, a.Applied())
			}
		}
		for _, e := range rec.Entries {
			want, ok := ref[e.Index]
			if !ok {
				return fmt.Sprintf("replica %v: durable entry %d absent from every committed log", id, e.Index)
			}
			if want.Instance != e.Instance || want.Cmd != e.Cmd {
				return fmt.Sprintf("replica %v: durable entry %d diverges from the committed log", id, e.Index)
			}
		}
	}
	return ""
}

// persistFor adapts the durable-store map to sm.Config.Persist. The
// indirection matters: a missing entry must yield a nil INTERFACE (the
// "persistence off" fast path), not a non-nil interface wrapping a nil
// *store.Memory.
func persistFor(m map[types.ProcID]*store.Memory, id types.ProcID) store.Persister {
	if p := m[id]; p != nil {
		return p
	}
	return nil
}

// RunKV executes the spec.
func RunKV(spec KVSpec) (*KVResult, error) {
	p := spec.Params
	if err := p.Validate(true); err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	if len(spec.Byzantine) > p.T {
		return nil, fmt.Errorf("runner: %d Byzantine processes exceed t=%d", len(spec.Byzantine), p.T)
	}
	if len(spec.Commands) == 0 {
		return nil, fmt.Errorf("runner: empty KV workload")
	}
	if spec.Compact && spec.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("runner: Compact requires SnapshotEvery > 0")
	}
	if spec.Log.AutoCompactLag > 0 {
		// Snapshot-driven compaction is the only safe mode under a state
		// machine: AutoCompactLag trims entries without a covering
		// snapshot, which would leave Recover with a gap and poison the
		// applier.
		return nil, fmt.Errorf("runner: AutoCompactLag is a pure-log knob; KV runs compact via SnapshotEvery+Compact")
	}
	if spec.CompactKeep <= 0 {
		spec.CompactKeep = 4
	}
	if spec.Transfer && spec.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("runner: Transfer requires SnapshotEvery > 0 (peers serve snapshots)")
	}
	if len(spec.CrashRestart) > 0 && !spec.Durable {
		return nil, fmt.Errorf("runner: CrashRestart requires Durable (the reboot reads the store)")
	}
	if spec.RestartDelay <= 0 {
		spec.RestartDelay = 25 * time.Millisecond
	}
	encoded := make([]types.Value, len(spec.Commands))
	distinct := make(map[types.Value]struct{}, len(spec.Commands))
	for i, c := range spec.Commands {
		encoded[i] = c.Encode()
		distinct[encoded[i]] = struct{}{}
	}
	w, err := harness.New(harness.Config{
		Params:   p,
		Topology: spec.Topology,
		Policy:   spec.Policy,
		Adv:      spec.Adv,
		FIFO:     spec.FIFO,
		Seed:     spec.Seed,
		Record:   spec.Record,
		BotOK:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}

	res := &KVResult{
		LogResult: LogResult{
			Logs:    make(map[types.ProcID][]log.Entry),
			Engines: make(map[types.ProcID]*log.Engine),
		},
		Stores:         make(map[types.ProcID]*kv.Store),
		Appliers:       make(map[types.ProcID]*sm.Applier),
		StateDigests:   make(map[types.ProcID][32]byte),
		SnapshotLog:    make(map[types.ProcID][]sm.Snapshot),
		RecoverErrs:    make(map[types.ProcID]error),
		Transfers:      make(map[types.ProcID]int),
		TransferServed: make(map[types.ProcID]int),
		Covered:        make(map[types.ProcID]int),
		Distinct:       len(distinct),
		Durables:       make(map[types.ProcID]*store.Memory),
		Boots:          make(map[types.ProcID]sm.BootStats),
		BootErrs:       make(map[types.ProcID]error),
	}
	if spec.Trace != nil {
		res.Tracers = make(map[types.ProcID]*xtrace.Tracer)
		res.Stages = obs.NewStageMetrics(spec.Obs, "")
	}
	var submitAt map[types.Value]types.Time
	if spec.Obs != nil {
		res.CommitLatency = obs.NewCommitLatency(spec.Obs)
		submitAt = make(map[types.Value]types.Time, len(distinct))
		for k, c := range encoded {
			if _, dup := submitAt[c]; !dup { // retries keep the first submit time
				submitAt[c] = types.Time(types.Duration(k) * spec.SubmitEvery)
			}
		}
	}
	trs := make(map[types.ProcID]*sm.Transfer)
	// Per-replica distinct-coverage sets live OUTSIDE the incarnation
	// closures: a crash-restarted replica keeps counting from where its
	// dead incarnation left off (coverage is a property of the process,
	// not of one boot).
	seenBy := make(map[types.ProcID]map[types.Value]struct{})
	// buildReplica assembles one incarnation of a correct replica's full
	// stack (kv.Store → sm.Applier → log.Engine → optional sm.Transfer).
	// The initial incarnation (reboot=false) registers telemetry and
	// tracing; a rebooted one (reboot=true) instead restores its durable
	// store through sm.Boot before the engine starts, and skips metric
	// registration (the registry already holds this replica's bundles).
	// Construction failures go to fail and the incarnation stays silent.
	buildReplica := func(id types.ProcID, reboot bool, fail func(error)) harness.Behavior {
		return func(env proto.Env) proto.Handler {
			silent := proto.HandlerFunc(func(types.ProcID, proto.Message) {})
			reg, trSpec := spec.Obs, spec.Trace
			if reboot {
				reg, trSpec = nil, nil
			}
			machine := kv.NewStore()
			var labels string
			if reg != nil {
				labels = procLabel(id)
				machine.SetMetrics(obs.NewKVMetrics(reg, labels))
			}
			var tracer *xtrace.Tracer
			if trSpec != nil {
				tracer = xtrace.New(xtrace.Config{
					Proc:     id,
					Now:      env.Now,
					Recorder: xtrace.NewRecorder(trSpec.cap()),
					Stages:   res.Stages,
				})
				res.Tracers[id] = tracer
			}
			var eng *log.Engine
			app, err := sm.New(sm.Config{
				Machine:       machine,
				SnapshotEvery: spec.SnapshotEvery,
				RefreshEvery:  spec.SnapshotRefresh,
				Persist:       persistFor(res.Durables, id),
				Metrics:       obs.NewSMMetrics(reg, labels),
				Tracer:        tracer,
				// The retained-suffix capture rides every snapshot so this
				// replica can serve complete transfer payloads (snapshot +
				// dedup window); cheap (CompactKeep-sized) when compaction
				// is on.
				RetainedEntries: func() []log.Entry {
					if eng == nil {
						return nil
					}
					return eng.Entries()
				},
				OnSnapshot: func(s sm.Snapshot) {
					res.SnapshotLog[id] = append(res.SnapshotLog[id],
						sm.Snapshot{Index: s.Index, Instance: s.Instance, Digest: s.Digest})
					env.Trace().Emit(trace.Event{
						At: env.Now(), Kind: trace.KindKVSnapshot, Proc: id,
						Aux: fmt.Sprintf("idx=%d inst=%v digest=%x", s.Index, s.Instance, s.Digest[:8]),
					})
					if spec.Compact && eng != nil {
						eng.Compact(s.Instance - spec.CompactKeep)
					}
				},
			})
			if err != nil {
				fail(err)
				return silent
			}
			cfg := spec.Log
			cfg.Env = env
			cfg.Target = spec.Target
			cfg.Tracer = tracer
			if reg != nil {
				cfg.Metrics = obs.NewLogMetrics(reg, labels)
				cfg.Engine.RBMetrics = obs.NewRBMetrics(reg, labels)
			}
			seen := seenBy[id]
			if seen == nil {
				seen = make(map[types.Value]struct{}, len(distinct))
				seenBy[id] = seen
			}
			cfg.OnCommit = func(e log.Entry) {
				res.Logs[id] = append(res.Logs[id], e)
				app.OnCommit(e)
				// Default stop rule: close once every distinct workload
				// command committed. Duplicate re-commits (possible after
				// compaction forgets the content dedup) and forged
				// commands from Byzantine batches don't count toward it —
				// a deterministic function of the applied prefix, so
				// instance starts stay symmetric.
				if _, workload := distinct[e.Cmd]; !workload {
					return
				}
				if _, dup := seen[e.Cmd]; dup {
					return
				}
				seen[e.Cmd] = struct{}{}
				res.Covered[id] = len(seen)
				if res.CommitLatency != nil {
					res.CommitLatency.Observe(int64(env.Now() - submitAt[e.Cmd]))
				}
				if spec.Target <= 0 && len(seen) >= len(distinct) && eng != nil {
					eng.Close()
				}
			}
			cfg.OnApply = app.OnApply
			var tr *sm.Transfer
			if spec.Transfer {
				// Late-bound: tr exists only after the engine it wraps.
				cfg.OnDroppedAhead = func(i types.Instance) {
					if tr != nil {
						tr.OnDroppedAhead(i)
					}
				}
			}
			eng, err = log.New(cfg)
			if err != nil {
				fail(err)
				return silent
			}
			if reboot {
				// Restore from "disk" exactly as a live node restart would:
				// install the stamped snapshot, replay the WAL suffix, and
				// resume the ordering layer at the durable boundary. No peer
				// is asked for anything.
				st, berr := sm.Boot(res.Durables[id], app, eng)
				if berr != nil {
					fail(berr)
					return silent
				}
				res.Boots[id] = st
				env.Trace().Emit(trace.Event{
					At: env.Now(), Kind: trace.KindKVRecover, Proc: id,
					Aux: fmt.Sprintf("boot replayed-to=%d boundary=%v", app.Applied(), st.Boundary),
				})
			}
			handler := proto.Handler(eng)
			if spec.Transfer {
				tr, err = sm.NewTransfer(sm.TransferConfig{
					Env:        env,
					Applier:    app,
					Log:        eng,
					Next:       eng,
					RetryEvery: spec.TransferRetry,
					StallProbe: spec.TransferProbe,
					Metrics:    obs.NewTransferMetrics(reg, labels),
				})
				if err != nil {
					fail(err)
					return silent
				}
				trs[id] = tr
				handler = tr
			}
			res.Engines[id] = eng
			res.Stores[id] = machine
			res.Appliers[id] = app
			// Submit the workload — on a reboot, re-submit it in full
			// relative to the restart instant: the crashed incarnation's
			// submit timers died with it, commit dedup drops what already
			// landed, and anything that was pending gets a second chance.
			for k, c := range encoded {
				c := c
				env.SetTimer(types.Duration(k)*spec.SubmitEvery, func() { _ = eng.Submit(c) })
			}
			if at, ok := spec.RecoverAt[id]; ok && !reboot {
				env.SetTimer(types.Duration(at), func() {
					if err := app.Recover(eng.Entries()); err != nil {
						res.RecoverErrs[id] = err
						return
					}
					env.Trace().Emit(trace.Event{
						At: env.Now(), Kind: trace.KindKVRecover, Proc: id,
						Aux: fmt.Sprintf("replayed-to=%d", app.Applied()),
					})
				})
			}
			env.SetTimer(0, func() {
				if err := eng.Start(); err != nil {
					fail(err)
				}
			})
			return handler
		}
	}
	for _, id := range p.AllProcs() {
		id := id
		if b, ok := spec.Byzantine[id]; ok {
			if err := w.SetBehavior(id, b); err != nil {
				return nil, fmt.Errorf("runner: %w", err)
			}
			continue
		}
		res.Correct = append(res.Correct, id)
		if spec.Durable {
			res.Durables[id] = store.NewMemory()
		}
		var engErr error
		err := w.SetBehavior(id, buildReplica(id, false, func(e error) {
			if engErr == nil {
				engErr = e
			}
		}))
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		if engErr != nil {
			return nil, fmt.Errorf("runner: kv replica %v: %w", id, engErr)
		}
		wireRetirer(w, id, res.Engines[id])
		wireObs(w, id, spec.Obs)
	}
	// Crash-restart choreography: power the process off at its mapped
	// time, reboot it from its durable store RestartDelay later. The
	// timers are scheduled directly on the scheduler (NOT through the
	// victim's env — the kill would fence its own restart), in sorted
	// process order so the event sequence is seed-deterministic.
	if len(spec.CrashRestart) > 0 {
		ids := make([]types.ProcID, 0, len(spec.CrashRestart))
		for id := range spec.CrashRestart {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			id := id
			if res.Durables[id] == nil {
				return nil, fmt.Errorf("runner: CrashRestart process %v is not a correct replica", id)
			}
			at := types.Duration(spec.CrashRestart[id])
			w.Sched.After(at, func() { w.Kill(id) })
			w.Sched.After(at+spec.RestartDelay, func() {
				err := w.SetBehavior(id, buildReplica(id, true, func(e error) {
					if res.BootErrs[id] == nil {
						res.BootErrs[id] = e
					}
				}))
				if err != nil && res.BootErrs[id] == nil {
					res.BootErrs[id] = err
				}
				wireRetirer(w, id, res.Engines[id])
			})
		}
	}

	res.Stop = w.Run(spec.Deadline, spec.MaxEvents)
	res.End = w.Sched.Now()
	res.Events = w.Sched.Executed
	res.Compactions = w.Sched.Compactions
	res.Messages = w.Net.Sent()
	res.Duplicates = w.DroppedDuplicates()
	res.Log = w.Log
	for _, id := range res.Correct {
		if eng := res.Engines[id]; eng != nil && eng.Err() != nil {
			return nil, fmt.Errorf("runner: kv replica %v: %w", id, eng.Err())
		}
		if app := res.Appliers[id]; app != nil {
			res.StateDigests[id] = app.StateDigest()
			if err := app.Err(); err != nil && res.RecoverErrs[id] == nil {
				// A poisoned applier (failed Recover after state mutation)
				// stopped applying; surface it as a recovery failure.
				res.RecoverErrs[id] = err
			}
		}
		if tr := trs[id]; tr != nil {
			res.Transfers[id] = tr.Installs()
			res.TransferServed[id] = tr.Served()
		}
	}
	return res, nil
}
