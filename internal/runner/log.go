package runner

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/log"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/xtrace"
)

// LogSpec describes one replicated-log execution on the simulator: every
// correct process runs a log.Engine and the same command workload is
// submitted to all of them (the PBFT-style client-broadcast model — see
// the internal/log package doc).
type LogSpec struct {
	// Params are the (n, t, m) resilience parameters (m is ignored: log
	// instances run the ⊥-validity variant).
	Params types.Params
	// Topology is the synchrony matrix (nil = fully asynchronous).
	Topology *network.Topology
	// Policy draws async-channel delays (nil = uniform 1–20 ms).
	Policy network.DelayPolicy
	// Adv optionally adversarially overrides async delays.
	Adv network.Adversary
	// FIFO enforces per-channel ordering.
	FIFO bool
	// Seed drives all randomness.
	Seed int64
	// Record keeps the trace log (scenario digests and timeliness
	// analysis need it; throughput runs leave it off).
	Record bool
	// Commands is the client workload, submitted to every correct
	// process. Commands must be distinct (the log deduplicates by
	// content).
	Commands []types.Value
	// SubmitEvery staggers the workload: command k is submitted at time
	// k·SubmitEvery (0 = everything at time 0).
	SubmitEvery types.Duration
	// Byzantine maps faulty processes to behaviors. Note that the stock
	// single-shot adversaries attack instance 0 only (their messages
	// carry instance 0); Silent and network-level adversaries affect the
	// whole log.
	Byzantine map[types.ProcID]harness.Behavior
	// Log carries the engine knobs (Engine, BatchSize, Pipeline,
	// MaxLead). Env, Target and OnCommit are set by the runner.
	Log log.Config
	// Obs, if non-nil, attaches live telemetry: per-replica log, RB and
	// dedup bundles (labeled proc="<id>") plus one shared end-to-end
	// commit-latency histogram (obs.CommitLatencyName; submission →
	// first local commit, virtual-time nanoseconds). Observation is
	// passive — an observed run produces a byte-identical trace to an
	// unobserved one (the scenario determinism test pins this).
	Obs *obs.Registry
	// Trace, if non-nil, attaches causal command tracing: one
	// xtrace.Tracer with a bounded flight recorder per correct replica,
	// plus the shared stage-latency histogram bundle when Obs is also
	// set. Passive like Obs — a traced run is schedule-identical to an
	// untraced one (the scenario determinism test pins this).
	Trace *TraceSpec
	// Target is the commit count at which engines stop opening new
	// instances (default len(Commands)).
	Target int
	// Deadline bounds virtual time (0 = run to drain).
	Deadline types.Time
	// MaxEvents bounds the number of simulation events (0 = unlimited).
	MaxEvents uint64
}

// LogResult is the outcome of one replicated-log execution.
type LogResult struct {
	// Logs holds every correct process's committed command log.
	Logs map[types.ProcID][]log.Entry
	// Correct lists the correct processes, ascending.
	Correct []types.ProcID
	// Messages is the total point-to-point message count.
	Messages uint64
	// Dropped is the number of sent messages the network dropped
	// (partitions, adversary drops); Messages − Dropped is the delivery
	// count.
	Dropped uint64
	// Duplicates counts messages dropped by the first-message rule.
	Duplicates uint64
	// End is the virtual time when the run stopped; Stop says why.
	End  types.Time
	Stop sim.StopReason
	// Events is the number of simulation events executed.
	Events uint64
	// Compactions counts event-heap compaction passes (canceled-timer
	// reclamation in the kernel; see sim.Scheduler).
	Compactions uint64
	// Log is the trace (nil unless Spec.Record).
	Log *trace.Log
	// CommitLatency is the shared commit-latency histogram (nil unless
	// Spec.Obs).
	CommitLatency *obs.Histogram
	// Engines gives access to per-process log engines (introspection).
	Engines map[types.ProcID]*log.Engine
	// Tracers holds each correct replica's causal tracer (nil unless
	// Spec.Trace); Stages the shared stage-latency bundle (nil unless
	// Spec.Trace and Spec.Obs).
	Tracers map[types.ProcID]*xtrace.Tracer
	Stages  *obs.StageMetrics
}

// TraceSpec configures causal tracing (see LogSpec.Trace / KVSpec.Trace).
type TraceSpec struct {
	// RecorderCap bounds each replica's flight-recorder ring (default
	// 4096 spans).
	RecorderCap int
}

// cap returns the effective recorder capacity.
func (t *TraceSpec) cap() int {
	if t == nil || t.RecorderCap <= 0 {
		return 4096
	}
	return t.RecorderCap
}

// TraceDumps captures every correct replica's flight recorder, in
// replica order, labeled with the given run name. Nil without tracing.
func (r *LogResult) TraceDumps(label string) []*xtrace.Dump {
	if r.Tracers == nil {
		return nil
	}
	var dumps []*xtrace.Dump
	for _, id := range r.Correct {
		if t := r.Tracers[id]; t != nil {
			dumps = append(dumps, t.Dump(label))
		}
	}
	return dumps
}

// AllCommitted reports whether every correct process committed at least
// target commands.
func (r *LogResult) AllCommitted(target int) bool {
	for _, id := range r.Correct {
		if len(r.Logs[id]) < target {
			return false
		}
	}
	return len(r.Correct) > 0
}

// Consistent reports whether all correct logs agree wherever they
// overlap (the total-order safety property: no two processes commit
// different commands at the same index). Alignment is by Entry.Index,
// not slice position: a replica that joined through snapshot state
// transfer commits only a suffix of the log locally, and positional
// comparison would misread that shift as divergence.
func (r *LogResult) Consistent() bool {
	for i, a := range r.Correct {
		for _, b := range r.Correct[i+1:] {
			la, lb := r.Logs[a], r.Logs[b]
			if len(la) == 0 || len(lb) == 0 {
				continue
			}
			// Each log is index-contiguous; shift to the common range.
			lo := la[0].Index
			if lb[0].Index > lo {
				lo = lb[0].Index
			}
			hi := la[len(la)-1].Index
			if top := lb[len(lb)-1].Index; top < hi {
				hi = top
			}
			for k := lo; k <= hi; k++ {
				ea, eb := la[k-la[0].Index], lb[k-lb[0].Index]
				if ea.Cmd != eb.Cmd || ea.Instance != eb.Instance {
					return false
				}
			}
		}
	}
	return len(r.Correct) > 0
}

// Deliveries returns the number of messages the network actually
// delivered (sent minus dropped) — the per-run message-volume figure the
// coalescing work targets.
func (r *LogResult) Deliveries() uint64 { return r.Messages - r.Dropped }

// MsgsPerCommit returns the message volume per committed command (using
// the slowest correct replica's commit count) — the trajectory metric
// the -trend tables track alongside latency. 0 when nothing committed.
func (r *LogResult) MsgsPerCommit() float64 {
	n := r.MinCommitted()
	if n == 0 {
		return 0
	}
	return float64(r.Messages) / float64(n)
}

// MinCommitted returns the smallest committed count among correct
// processes.
func (r *LogResult) MinCommitted() int {
	min := -1
	for _, id := range r.Correct {
		if n := len(r.Logs[id]); min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// wireRetirer connects a replica's dedup dispatcher to its log engine so
// Compact retires message-dedup sub-maps in the same stroke as the
// engine's own per-instance state. Must run after SetBehavior (the node
// exists only then); a nil engine (construction failed) is a no-op.
func wireRetirer(w *harness.World, id types.ProcID, eng *log.Engine) {
	if eng == nil {
		return
	}
	if n := w.Node(id); n != nil {
		eng.SetRetirer(n)
	}
}

// procLabel renders the per-replica label body shared by every runner
// bundle, e.g. `proc="2"`.
func procLabel(id types.ProcID) string {
	return fmt.Sprintf("proc=%q", fmt.Sprint(id))
}

// wireObs attaches the dedup dispatcher's telemetry bundle. Like
// wireRetirer it must run after SetBehavior.
func wireObs(w *harness.World, id types.ProcID, reg *obs.Registry) {
	if reg == nil {
		return
	}
	if n := w.Node(id); n != nil {
		n.SetMetrics(obs.NewDedupMetrics(reg, procLabel(id)))
	}
}

// RunLog executes the spec.
func RunLog(spec LogSpec) (*LogResult, error) {
	p := spec.Params
	if err := p.Validate(true); err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	if len(spec.Byzantine) > p.T {
		return nil, fmt.Errorf("runner: %d Byzantine processes exceed t=%d", len(spec.Byzantine), p.T)
	}
	seen := make(map[types.Value]bool, len(spec.Commands))
	for _, c := range spec.Commands {
		if c == types.BotValue {
			return nil, fmt.Errorf("runner: workload contains the reserved ⊥ value")
		}
		if seen[c] {
			return nil, fmt.Errorf("runner: duplicate command %q", c)
		}
		seen[c] = true
	}
	if spec.Target <= 0 {
		spec.Target = len(spec.Commands)
	}
	w, err := harness.New(harness.Config{
		Params:   p,
		Topology: spec.Topology,
		Policy:   spec.Policy,
		Adv:      spec.Adv,
		FIFO:     spec.FIFO,
		Seed:     spec.Seed,
		Record:   spec.Record,
		BotOK:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}

	res := &LogResult{
		Logs:    make(map[types.ProcID][]log.Entry),
		Engines: make(map[types.ProcID]*log.Engine),
	}
	if spec.Trace != nil {
		res.Tracers = make(map[types.ProcID]*xtrace.Tracer)
		res.Stages = obs.NewStageMetrics(spec.Obs, "")
	}
	var submitAt map[types.Value]types.Time
	if spec.Obs != nil {
		res.CommitLatency = obs.NewCommitLatency(spec.Obs)
		submitAt = make(map[types.Value]types.Time, len(spec.Commands))
		for k, c := range spec.Commands {
			submitAt[c] = types.Time(types.Duration(k) * spec.SubmitEvery)
		}
	}
	for _, id := range p.AllProcs() {
		id := id
		if b, ok := spec.Byzantine[id]; ok {
			if err := w.SetBehavior(id, b); err != nil {
				return nil, fmt.Errorf("runner: %w", err)
			}
			continue
		}
		res.Correct = append(res.Correct, id)
		var engErr error
		err := w.SetBehavior(id, func(env proto.Env) proto.Handler {
			cfg := spec.Log
			cfg.Env = env
			cfg.Target = spec.Target
			if spec.Trace != nil {
				tr := xtrace.New(xtrace.Config{
					Proc:     id,
					Now:      env.Now,
					Recorder: xtrace.NewRecorder(spec.Trace.cap()),
					Stages:   res.Stages,
				})
				res.Tracers[id] = tr
				cfg.Tracer = tr
			}
			var latSeen map[types.Value]struct{}
			if spec.Obs != nil {
				labels := procLabel(id)
				cfg.Metrics = obs.NewLogMetrics(spec.Obs, labels)
				cfg.Engine.RBMetrics = obs.NewRBMetrics(spec.Obs, labels)
				latSeen = make(map[types.Value]struct{}, len(spec.Commands))
			}
			cfg.OnCommit = func(e log.Entry) {
				res.Logs[id] = append(res.Logs[id], e)
				if res.CommitLatency != nil {
					// This replica's FIRST commit of each workload command
					// only: compaction can let a forgotten duplicate commit
					// again much later, which isn't a client-visible latency.
					if at, ok := submitAt[e.Cmd]; ok {
						if _, dup := latSeen[e.Cmd]; !dup {
							latSeen[e.Cmd] = struct{}{}
							res.CommitLatency.Observe(int64(env.Now() - at))
						}
					}
				}
			}
			eng, err := log.New(cfg)
			if err != nil {
				engErr = err
				return proto.HandlerFunc(func(types.ProcID, proto.Message) {})
			}
			res.Engines[id] = eng
			for k, c := range spec.Commands {
				c := c
				env.SetTimer(types.Duration(k)*spec.SubmitEvery, func() { _ = eng.Submit(c) })
			}
			env.SetTimer(0, func() {
				if err := eng.Start(); err != nil {
					engErr = err
				}
			})
			return eng
		})
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		if engErr != nil {
			return nil, fmt.Errorf("runner: log engine %v: %w", id, engErr)
		}
		wireRetirer(w, id, res.Engines[id])
		wireObs(w, id, spec.Obs)
	}

	res.Stop = w.Run(spec.Deadline, spec.MaxEvents)
	res.End = w.Sched.Now()
	res.Events = w.Sched.Executed
	res.Compactions = w.Sched.Compactions
	res.Messages = w.Net.Sent()
	res.Dropped = w.Net.Dropped()
	res.Duplicates = w.DroppedDuplicates()
	res.Log = w.Log
	for _, id := range res.Correct {
		if eng := res.Engines[id]; eng != nil && eng.Err() != nil {
			return nil, fmt.Errorf("runner: log engine %v: %w", id, eng.Err())
		}
	}
	return res, nil
}
