package runner_test

import (
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/types"
)

const unit = types.Duration(10 * time.Millisecond)

func okSpec(seed int64) runner.Spec {
	return runner.Spec{
		Params:   types.Params{N: 4, T: 1, M: 2},
		Topology: network.FullySynchronous(4, types.Duration(2*time.Millisecond)),
		Seed:     seed,
		Proposals: map[types.ProcID]types.Value{
			1: "a", 2: "b", 3: "a", 4: "b",
		},
		Engine: core.Config{TimeUnit: unit},
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := runner.Run(okSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("expected decision")
	}
	v, ok := res.CommonDecision()
	if !ok || (v != "a" && v != "b") {
		t.Fatalf("common decision = %q, %v", v, ok)
	}
	if res.MaxDecideRound() < 1 {
		t.Fatal("MaxDecideRound < 1")
	}
	if res.MaxDecideTime() <= 0 {
		t.Fatal("MaxDecideTime <= 0")
	}
	if res.Stop != sim.Drained {
		t.Fatalf("Stop = %v", res.Stop)
	}
	if res.Messages == 0 || res.Events == 0 {
		t.Fatal("counters empty")
	}
	if len(res.Correct) != 4 {
		t.Fatalf("Correct = %v", res.Correct)
	}
	if res.Log != nil {
		t.Fatal("Log must be nil without Record")
	}
}

func TestEmptyResultAccessors(t *testing.T) {
	var res runner.Result
	if res.AllDecided() {
		t.Fatal("empty result cannot be AllDecided")
	}
	if _, ok := res.CommonDecision(); ok {
		t.Fatal("empty result has no common decision")
	}
	if res.MaxDecideRound() != 0 || res.MaxDecideTime() != 0 {
		t.Fatal("empty maxima must be zero")
	}
}

func TestDisagreementDetection(t *testing.T) {
	// Force a partial-decision result shape to cover CommonDecision's
	// divergence branch with a synthetic result.
	res := runner.Result{
		Correct:   []types.ProcID{1, 2},
		Decisions: map[types.ProcID]types.Value{1: "a", 2: "b"},
	}
	if _, ok := res.CommonDecision(); ok {
		t.Fatal("divergent decisions reported as common")
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	spec := okSpec(2)
	spec.Deadline = types.Time(time.Millisecond) // far too short to decide
	res, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != sim.DeadlineReached {
		t.Fatalf("Stop = %v", res.Stop)
	}
	if res.End != types.Time(time.Millisecond) {
		t.Fatalf("End = %v", res.End)
	}
}

func TestMaxEventsStopsRun(t *testing.T) {
	spec := okSpec(3)
	spec.MaxEvents = 10
	res, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != sim.EventLimit {
		t.Fatalf("Stop = %v", res.Stop)
	}
	if res.Events != 10 {
		t.Fatalf("Events = %d", res.Events)
	}
}

func TestStalledReporting(t *testing.T) {
	// Fully asynchronous + tiny MaxRounds with adversarial delays: some
	// process may hit the cap. Use the splitter-style config guaranteed
	// to stall (pure async cannot guarantee progress with MaxRounds=1).
	spec := okSpec(4)
	spec.Topology = network.FullyAsynchronous(4)
	spec.Engine.MaxRounds = 1
	spec.Adv = adversary.NewTargetedDelay(map[[2]types.ProcID]bool{
		{1, 2}: true, {1, 3}: true, {1, 4}: true,
	}, types.Duration(time.Hour), 0, 1)
	res, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Whether or not it decides in one round, the run must drain and the
	// Stalled list must be consistent with the engines.
	for _, id := range res.Stalled {
		if !res.Engines[id].Stalled() {
			t.Fatalf("%v reported stalled but engine disagrees", id)
		}
	}
}

func TestProposeAtStaggered(t *testing.T) {
	// A late proposer may still decide early: Fig. 4 line 9 is a standing
	// rule, so t+1 DECIDE deliveries from faster peers decide for it. The
	// run must terminate with full agreement either way.
	spec := okSpec(5)
	spec.ProposeAt = map[types.ProcID]types.Duration{2: types.Duration(100 * time.Millisecond)}
	res, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("staggered run must decide")
	}
	if _, ok := res.CommonDecision(); !ok {
		t.Fatalf("staggered run disagreed: %v", res.Decisions)
	}
}

func TestByzantineBudgetEnforced(t *testing.T) {
	spec := okSpec(6)
	delete(spec.Proposals, 3)
	delete(spec.Proposals, 4)
	spec.Byzantine = map[types.ProcID]harness.Behavior{
		3: adversary.Silent(),
		4: adversary.Silent(),
	}
	if _, err := runner.Run(spec); err == nil {
		t.Fatal("2 Byzantine with t=1 must be rejected")
	}
}

func TestInvalidParams(t *testing.T) {
	spec := okSpec(7)
	spec.Params = types.Params{N: 3, T: 1, M: 1}
	if _, err := runner.Run(spec); err == nil {
		t.Fatal("t ≥ n/3 must be rejected")
	}
}
