package runner

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/types"
)

func logCommands(n int) []types.Value {
	cmds := make([]types.Value, n)
	for i := range cmds {
		cmds[i] = types.Value(fmt.Sprintf("cmd-%04d", i))
	}
	return cmds
}

func logSpec(n, ncmds int, seed int64) LogSpec {
	spec := LogSpec{
		Params:   types.Params{N: n, T: (n - 1) / 3},
		Topology: network.FullySynchronous(n, types.Duration(2*time.Millisecond)),
		Seed:     seed,
		Commands: logCommands(ncmds),
		Deadline: types.Time(10 * time.Minute),
	}
	spec.Log.Engine.TimeUnit = types.Duration(10 * time.Millisecond)
	spec.Log.BatchSize = 8
	spec.Log.Pipeline = 2
	return spec
}

func TestLogCommitsWholeWorkload(t *testing.T) {
	res, err := RunLog(logSpec(4, 40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(40) {
		t.Fatalf("only %d commands committed everywhere, want 40", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("correct logs disagree")
	}
	// The engines must stop opening instances once the target is hit, so
	// the simulation drains instead of running to the deadline.
	if res.Stop.String() != "drained" {
		t.Fatalf("run did not quiesce: stop=%v", res.Stop)
	}
	// Batching must pay: 40 commands must need far fewer than 40
	// instances.
	for _, id := range res.Correct {
		if got := int(res.Engines[id].Applied()); got > 12 {
			t.Fatalf("process %v used %d instances for 40 commands (batching broken?)", id, got)
		}
	}
}

func TestLogIdenticalAcrossProcesses(t *testing.T) {
	res, err := RunLog(logSpec(4, 30, 7))
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Logs[res.Correct[0]]
	for _, id := range res.Correct[1:] {
		got := res.Logs[id]
		if len(got) != len(ref) {
			t.Fatalf("process %v committed %d, reference %d", id, len(got), len(ref))
		}
		for k := range ref {
			if got[k].Cmd != ref[k].Cmd || got[k].Instance != ref[k].Instance || got[k].Index != ref[k].Index {
				t.Fatalf("process %v entry %d = %+v, reference %+v", id, k, got[k], ref[k])
			}
		}
	}
}

func TestLogDeterministicReplay(t *testing.T) {
	a, err := RunLog(logSpec(4, 24, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLog(logSpec(4, 24, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.End != b.End || a.Events != b.Events {
		t.Fatalf("same seed diverged: %d/%v/%d vs %d/%v/%d",
			a.Messages, a.End, a.Events, b.Messages, b.End, b.Events)
	}
	for _, id := range a.Correct {
		la, lb := a.Logs[id], b.Logs[id]
		if len(la) != len(lb) {
			t.Fatalf("process %v: %d vs %d entries", id, len(la), len(lb))
		}
		for k := range la {
			if la[k] != lb[k] {
				t.Fatalf("process %v entry %d differs: %+v vs %+v", id, k, la[k], lb[k])
			}
		}
	}
}

func TestLogWithSilentByzantine(t *testing.T) {
	spec := logSpec(4, 30, 3)
	spec.Byzantine = map[types.ProcID]harness.Behavior{4: adversary.Silent()}
	res, err := RunLog(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Correct) != 3 {
		t.Fatalf("correct set %v", res.Correct)
	}
	if !res.AllCommitted(30) {
		t.Fatalf("only %d committed with one silent process", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("logs disagree under a silent Byzantine process")
	}
}

func TestLogWithSpamByzantine(t *testing.T) {
	// A spammer floods conflicting protocol messages (instance 0 traffic
	// plus garbage); the log must stay consistent and keep committing.
	spec := logSpec(4, 20, 11)
	spec.Byzantine = map[types.ProcID]harness.Behavior{4: adversary.SpamStreams("evil", 32)}
	res, err := RunLog(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(20) {
		t.Fatalf("only %d committed under spam", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("logs disagree under spam")
	}
}

func TestLogStaggeredSubmissions(t *testing.T) {
	spec := logSpec(4, 30, 5)
	spec.SubmitEvery = types.Duration(3 * time.Millisecond)
	res, err := RunLog(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(30) {
		t.Fatalf("only %d committed with staggered submissions", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("logs disagree with staggered submissions")
	}
}

func TestLogPipelineDepthOne(t *testing.T) {
	spec := logSpec(4, 20, 9)
	spec.Log.Pipeline = 1
	res, err := RunLog(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(20) || !res.Consistent() {
		t.Fatalf("pipeline depth 1 failed: min=%d consistent=%v", res.MinCommitted(), res.Consistent())
	}
}

func TestLogLargerSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunLog(logSpec(7, 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(40) || !res.Consistent() {
		t.Fatalf("n=7 failed: min=%d consistent=%v", res.MinCommitted(), res.Consistent())
	}
}

func TestLogRejectsDuplicateCommands(t *testing.T) {
	spec := logSpec(4, 4, 1)
	spec.Commands = append(spec.Commands, spec.Commands[0])
	if _, err := RunLog(spec); err == nil {
		t.Fatal("duplicate workload accepted")
	}
}

func TestLogRejectsBotCommand(t *testing.T) {
	spec := logSpec(4, 4, 1)
	spec.Commands = append(spec.Commands, types.BotValue)
	if _, err := RunLog(spec); err == nil {
		t.Fatal("⊥ command accepted (run would hang instead of failing fast)")
	}
}

func TestLogEventualSynchrony(t *testing.T) {
	// Channels become timely only at GST; the log must still commit
	// everything afterwards and stay consistent throughout.
	spec := logSpec(4, 16, 13)
	spec.Topology = network.EventuallySynchronous(4, types.Time(100*time.Millisecond), types.Duration(2*time.Millisecond))
	res, err := RunLog(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(16) {
		t.Fatalf("only %d committed under eventual synchrony", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("logs disagree under eventual synchrony")
	}
}
