package runner

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/harness"
	"repro/internal/kv"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/types"
)

// kvWorkload builds n session-carrying commands spread over `clients`
// clients and `keys` keys, with a deterministic op mix.
func kvWorkload(n, clients, keys int) []kv.Command {
	cmds := make([]kv.Command, 0, n)
	seqs := make(map[uint64]uint64, clients)
	for i := 0; i < n; i++ {
		client := uint64(i%clients + 1)
		seqs[client]++
		c := kv.Command{Client: client, Seq: seqs[client], Key: fmt.Sprintf("key-%02d", (i*7)%keys)}
		switch i % 5 {
		case 3:
			c.Op = kv.OpGet
		case 4:
			c.Op = kv.OpDel
		default:
			c.Op = kv.OpPut
			c.Val = fmt.Sprintf("val-%04d", i)
		}
		cmds = append(cmds, c)
	}
	return cmds
}

func kvSpec(n, ncmds int, seed int64) KVSpec {
	spec := KVSpec{
		Params:   types.Params{N: n, T: (n - 1) / 3},
		Topology: network.FullySynchronous(n, types.Duration(2*time.Millisecond)),
		Seed:     seed,
		Commands: kvWorkload(ncmds, 3, 8),
		Deadline: types.Time(10 * time.Minute),
	}
	spec.Log.Engine.TimeUnit = types.Duration(10 * time.Millisecond)
	spec.Log.BatchSize = 8
	spec.Log.Pipeline = 2
	return spec
}

func TestKVStateAgreesAcrossReplicas(t *testing.T) {
	spec := kvSpec(4, 40, 1)
	spec.SnapshotEvery = 10
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(40) {
		t.Fatalf("only %d commands committed everywhere", res.MinCommitted())
	}
	if !res.Consistent() {
		t.Fatal("logs inconsistent")
	}
	if !res.StatesAgree() {
		t.Fatal("state digests disagree")
	}
	if d := res.ReferenceDivergence(); d != "" {
		t.Fatal(d)
	}
	ref := res.StateDigests[res.Correct[0]]
	for _, id := range res.Correct[1:] {
		if res.StateDigests[id] != ref {
			t.Fatalf("replica %v state digest differs", id)
		}
	}
	for _, id := range res.Correct {
		if len(res.SnapshotLog[id]) == 0 {
			t.Fatalf("replica %v took no snapshots", id)
		}
	}
	if !res.SnapshotsAgree() {
		t.Fatal("snapshot digests disagree at common indexes")
	}
}

// TestKVCompactionBoundsState: with compaction on, a long run retires
// instance engines, dedup sub-maps and entry prefixes; retained state
// stays bounded instead of growing with the log.
func TestKVCompactionBoundsState(t *testing.T) {
	spec := kvSpec(4, 120, 3)
	spec.Log.BatchSize = 4 // more instances
	spec.SnapshotEvery = 8
	spec.Compact = true
	spec.CompactKeep = 2
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(120) || !res.Consistent() || !res.StatesAgree() {
		t.Fatalf("run degraded: committed=%d consistent=%v states=%v",
			res.MinCommitted(), res.Consistent(), res.StatesAgree())
	}
	for _, id := range res.Correct {
		eng := res.Engines[id]
		if eng.Retired() == 0 {
			t.Fatalf("replica %v retired no instances", id)
		}
		if eng.Floor() == 0 {
			t.Fatalf("replica %v never advanced its floor", id)
		}
		// Live per-instance state must be a small margin, not the whole
		// run: floor trails the applied point by at most keep + snapshot
		// window, and everything below it is gone.
		live := eng.Instances()
		total := int(eng.Applied())
		if live >= total {
			t.Fatalf("replica %v holds %d live instances of %d applied (nothing retired?)", id, live, total)
		}
		if eng.EntriesBase() == 0 {
			t.Fatalf("replica %v trimmed no entries", id)
		}
	}
}

// TestKVClientRetriesStayExactlyOnce: the workload carries retries — a
// byte-identical duplicate and a re-encoded duplicate of the same
// (client, seq) — under compaction aggressive enough that the log's
// content dedup can forget the originals. The session layer must keep
// the state machine exactly-once everywhere.
func TestKVClientRetriesStayExactlyOnce(t *testing.T) {
	base := kvWorkload(60, 3, 8)
	cmds := make([]kv.Command, 0, len(base)+20)
	for i, c := range base {
		cmds = append(cmds, c)
		if i%6 == 2 {
			cmds = append(cmds, c) // byte-identical retry
		}
		if i%6 == 5 && c.Op == kv.OpPut {
			retry := c
			retry.Val = c.Val + "-retry" // re-encoded retry, same (client, seq)
			cmds = append(cmds, retry)
		}
	}
	spec := kvSpec(4, 1, 5)
	spec.Commands = cmds
	spec.Log.BatchSize = 4
	spec.SnapshotEvery = 6
	spec.Compact = true
	spec.CompactKeep = 2
	spec.SubmitEvery = types.Duration(500 * time.Microsecond)
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent() || !res.StatesAgree() {
		t.Fatal("retries broke consistency")
	}
	if d := res.ReferenceDivergence(); d != "" {
		t.Fatal(d)
	}
	ref := res.Correct[0]
	store := res.Stores[ref]
	if store.Duplicates() == 0 {
		t.Fatal("no duplicate suppression observed — the retry workload did not exercise sessions")
	}
	// Sequential oracle over the committed log gives the authoritative
	// apply/dup counts; every replica's live store must match it exactly.
	oracle := kv.NewStore()
	for _, e := range res.Logs[ref] {
		oracle.Apply(e.Cmd)
	}
	for _, id := range res.Correct {
		s := res.Stores[id]
		if s.Applies() != oracle.Applies() || s.Duplicates() != oracle.Duplicates() || s.Stales() != oracle.Stales() {
			t.Fatalf("replica %v counters (%d,%d,%d) != oracle (%d,%d,%d)",
				id, s.Applies(), s.Duplicates(), s.Stales(),
				oracle.Applies(), oracle.Duplicates(), oracle.Stales())
		}
	}
}

func TestKVRecoverMidRun(t *testing.T) {
	spec := kvSpec(4, 80, 7)
	spec.SnapshotEvery = 8
	spec.Compact = true
	spec.SubmitEvery = types.Duration(time.Millisecond)
	spec.RecoverAt = map[types.ProcID]types.Time{2: types.Time(60 * time.Millisecond)}
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.RecoverErrs[2]; err != nil {
		t.Fatalf("recover failed: %v", err)
	}
	if res.Appliers[2].Recoveries() != 1 {
		t.Fatal("recovery did not run")
	}
	if !res.AllCommitted(80) || !res.Consistent() || !res.StatesAgree() {
		t.Fatalf("post-recovery run degraded: committed=%d consistent=%v states=%v",
			res.MinCommitted(), res.Consistent(), res.StatesAgree())
	}
}

func TestKVSilentReplica(t *testing.T) {
	spec := kvSpec(4, 40, 11)
	spec.SnapshotEvery = 10
	spec.Compact = true
	spec.Byzantine = map[types.ProcID]harness.Behavior{4: adversary.Silent()}
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCommitted(40) || !res.Consistent() || !res.StatesAgree() {
		t.Fatalf("faulty run degraded: committed=%d consistent=%v states=%v",
			res.MinCommitted(), res.Consistent(), res.StatesAgree())
	}
}

// TestKVDeterministicReplay: same spec, same seed ⇒ identical state
// digests and snapshot logs.
func TestKVDeterministicReplay(t *testing.T) {
	run := func() *KVResult {
		spec := kvSpec(4, 40, 13)
		spec.SnapshotEvery = 10
		spec.Compact = true
		res, err := RunKV(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for _, id := range a.Correct {
		if a.StateDigests[id] != b.StateDigests[id] {
			t.Fatalf("replica %v digests differ across identical runs", id)
		}
		if len(a.SnapshotLog[id]) != len(b.SnapshotLog[id]) {
			t.Fatalf("replica %v snapshot counts differ", id)
		}
	}
}

func TestKVSpecValidation(t *testing.T) {
	spec := kvSpec(4, 10, 1)
	spec.Compact = true // without SnapshotEvery
	if _, err := RunKV(spec); err == nil {
		t.Fatal("Compact without SnapshotEvery accepted")
	}
	spec = kvSpec(4, 10, 1)
	spec.Commands = nil
	if _, err := RunKV(spec); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// TestKVLagTransfer: a replica severed by a dropping partition until the
// cluster has compacted past its replay horizon must reconverge through
// peer snapshot transfer — byte-identical state at an identical applied
// count, with the transfer counters proving the path taken.
func TestKVLagTransfer(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		spec := kvSpec(4, 60, seed)
		spec.Commands = kvWorkload(60, 3, 8)
		spec.SubmitEvery = types.Duration(2 * time.Millisecond)
		spec.SnapshotEvery = 1
		spec.Compact = true
		spec.CompactKeep = 1
		spec.Transfer = true
		spec.Target = 60
		spec.Log.BatchSize = 2
		spec.Log.MaxLead = 4
		spec.Adv = &adversary.DroppingPartition{
			Side:   map[types.ProcID]int{1: 1},
			HealAt: types.Time(250 * time.Millisecond),
		}
		res, err := RunKV(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Transfers[1] == 0 {
			t.Fatalf("seed %d: severed replica installed no snapshot", seed)
		}
		served := 0
		for _, id := range res.Correct {
			served += res.TransferServed[id]
		}
		if served == 0 {
			t.Fatalf("seed %d: no peer served a snapshot", seed)
		}
		if res.Engines[1].DroppedAhead() == 0 {
			t.Fatalf("seed %d: the severed replica never crossed the replay horizon", seed)
		}
		if !res.Consistent() {
			t.Fatalf("seed %d: logs inconsistent", seed)
		}
		if d := res.ReferenceDivergence(); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		ref := res.Correct[1] // full-history replica
		for _, id := range res.Correct {
			if got, want := res.Appliers[id].Applied(), res.Appliers[ref].Applied(); got != want {
				t.Fatalf("seed %d: replica %v applied %d entries, want %d", seed, id, got, want)
			}
			if res.StateDigests[id] != res.StateDigests[ref] {
				t.Fatalf("seed %d: replica %v state digest diverged", seed, id)
			}
		}
	}
}

// TestKVDurablePassive: attaching durable stores (without crashing
// anything) is passive — the run is byte-identical to a non-durable one —
// while the stores end the run holding a consistent prefix of the
// committed log (DurablePrefix).
func TestKVDurablePassive(t *testing.T) {
	base := func() KVSpec {
		spec := kvSpec(4, 40, 9)
		spec.SubmitEvery = types.Duration(time.Millisecond)
		spec.SnapshotEvery = 10
		spec.Compact = true
		return spec
	}
	plain, err := RunKV(base())
	if err != nil {
		t.Fatal(err)
	}
	spec := base()
	spec.Durable = true
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Correct {
		if res.StateDigests[id] != plain.StateDigests[id] {
			t.Fatalf("replica %v state diverged under persistence", id)
		}
		if len(res.Logs[id]) != len(plain.Logs[id]) {
			t.Fatalf("replica %v log length diverged under persistence", id)
		}
	}
	if d := res.DurablePrefix(); d != "" {
		t.Fatal(d)
	}
	for _, id := range res.Correct {
		rec, err := res.Durables[id].Recover()
		if err != nil {
			t.Fatal(err)
		}
		if rec.SnapPayload == nil {
			t.Fatalf("replica %v stamped no snapshot", id)
		}
		if rec.Boundary == 0 {
			t.Fatalf("replica %v marked no applied boundary", id)
		}
	}
}

// TestKVCrashRestart: a replica is power-cut mid-stream (volatile state
// gone: engine, applier, dedup dispatcher, timers) and rebooted shortly
// after from its durable store alone. It must resume at its fsync'd
// boundary (applied ⊇ fsync'd), catch the instances decided after its
// reboot through the DECIDE quorum stream, and reconverge to the
// cluster state with ZERO peer snapshot installs — the transfer layer is
// armed precisely to prove it stays idle.
func TestKVCrashRestart(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		spec := kvSpec(4, 80, seed)
		spec.SubmitEvery = types.Duration(time.Millisecond)
		spec.SnapshotEvery = 8
		spec.Durable = true
		spec.Transfer = true
		spec.CrashRestart = map[types.ProcID]types.Time{2: types.Time(40 * time.Millisecond)}
		spec.RestartDelay = types.Duration(4 * time.Millisecond)
		res, err := RunKV(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.BootErrs[2]; err != nil {
			t.Fatalf("seed %d: reboot failed: %v", seed, err)
		}
		st, ok := res.Boots[2]
		if !ok {
			t.Fatalf("seed %d: replica 2 never rebooted", seed)
		}
		if st.Boundary == 0 {
			t.Fatalf("seed %d: reboot recovered nothing (boundary 0) — crash landed before any commit", seed)
		}
		if !res.CoveredAll() {
			t.Fatalf("seed %d: coverage incomplete after restart: %v of %d", seed, res.Covered, res.Distinct)
		}
		if !res.Consistent() {
			t.Fatalf("seed %d: logs inconsistent", seed)
		}
		if !res.StatesAgree() {
			t.Fatalf("seed %d: state digests disagree after restart", seed)
		}
		if d := res.DurablePrefix(); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		if d := res.ReferenceDivergence(); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
		// The whole point: the rebooted replica reconverged from disk and
		// live traffic, not from a peer snapshot.
		if res.Transfers[2] != 0 {
			t.Fatalf("seed %d: rebooted replica installed %d peer snapshots", seed, res.Transfers[2])
		}
		for _, id := range res.Correct {
			if res.TransferServed[id] != 0 {
				t.Fatalf("seed %d: replica %v served a snapshot to the rebooted one", seed, id)
			}
		}
	}
}

// TestKVCrashRestartValidation: the reboot reads the durable store, so
// scheduling one without Durable must be rejected.
func TestKVCrashRestartValidation(t *testing.T) {
	spec := kvSpec(4, 10, 1)
	spec.CrashRestart = map[types.ProcID]types.Time{2: types.Time(10 * time.Millisecond)}
	if _, err := RunKV(spec); err == nil {
		t.Fatal("CrashRestart without Durable accepted")
	}
	spec = kvSpec(4, 10, 1)
	spec.Durable = true
	spec.SnapshotEvery = 10
	spec.Byzantine = map[types.ProcID]harness.Behavior{4: adversary.Silent()}
	spec.CrashRestart = map[types.ProcID]types.Time{4: types.Time(10 * time.Millisecond)}
	if _, err := RunKV(spec); err == nil {
		t.Fatal("CrashRestart of a Byzantine process accepted")
	}
}

// TestKVTransferRequiresSnapshots: serving peers need snapshots to serve.
func TestKVTransferRequiresSnapshots(t *testing.T) {
	spec := kvSpec(4, 8, 1)
	spec.Transfer = true
	if _, err := RunKV(spec); err == nil {
		t.Fatal("Transfer without SnapshotEvery accepted")
	}
}

// TestKVObserved: attaching a telemetry registry is passive — the run
// produces identical state and logs — while populating per-replica
// metric series and the shared commit-latency histogram.
func TestKVObserved(t *testing.T) {
	base := func() KVSpec {
		spec := kvSpec(4, 30, 7)
		spec.SubmitEvery = types.Duration(time.Millisecond)
		spec.SnapshotEvery = 8
		spec.Compact = true
		return spec
	}
	plain, err := RunKV(base())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	spec := base()
	spec.Obs = reg
	res, err := RunKV(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoveredAll() {
		t.Fatalf("coverage incomplete: %v", res.Covered)
	}
	// Passive: byte-identical outcome with and without the registry.
	for _, id := range res.Correct {
		if res.StateDigests[id] != plain.StateDigests[id] {
			t.Fatalf("replica %v state diverged under observation", id)
		}
		if len(res.Logs[id]) != len(plain.Logs[id]) {
			t.Fatalf("replica %v log length diverged under observation", id)
		}
	}
	// Latency: every correct replica observes each distinct command once.
	want := uint64(res.Distinct * len(res.Correct))
	if got := res.CommitLatency.Count(); got != want {
		t.Fatalf("latency observations = %d, want %d", got, want)
	}
	if res.CommitLatency.Quantile(0.5) <= 0 {
		t.Fatal("p50 commit latency is zero")
	}
	// Series: each layer's bundle registered and counted per replica.
	counters := reg.Snapshot().Counters
	for _, id := range res.Correct {
		label := fmt.Sprintf("proc=%q", fmt.Sprint(id))
		for _, base := range []string{
			"minsync_log_committed_total",
			"minsync_sm_applies_total",
			"minsync_kv_applies_total",
			"minsync_rb_delivers_total",
		} {
			name := base + "{" + label + "}"
			if counters[name] == 0 {
				t.Errorf("series %s missing or zero", name)
			}
		}
	}
}
