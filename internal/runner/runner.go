// Package runner orchestrates complete consensus executions on the
// simulation harness: it instantiates one core.Engine per correct process
// and the requested Byzantine behaviors, runs the world to completion (or
// deadline / event budget), and collects decisions, rounds, message counts
// and the trace log into a Result. Tests, benchmarks, the experiment CLI
// and the public minsync API all run through it.
package runner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

// Spec describes one consensus execution.
type Spec struct {
	// Params are the (n, t, m) resilience parameters.
	Params types.Params
	// Topology is the synchrony matrix (nil = fully asynchronous — note
	// that termination is then not guaranteed; use a deadline).
	Topology *network.Topology
	// Policy draws async-channel delays (nil = uniform 1–20 ms).
	Policy network.DelayPolicy
	// Adv optionally adversarially overrides async delays.
	Adv network.Adversary
	// FIFO enforces per-channel ordering.
	FIFO bool
	// Seed drives all randomness.
	Seed int64
	// Record keeps the trace log (needed by the invariant checkers).
	Record bool
	// Proposals maps each correct process to its proposed value. Every
	// process 1..N must appear in exactly one of Proposals or Byzantine.
	Proposals map[types.ProcID]types.Value
	// Byzantine maps faulty processes to their behaviors.
	Byzantine map[types.ProcID]harness.Behavior
	// Engine carries the protocol knobs (K, TimeUnit, Mode, Relay,
	// BotMode, MaxRounds). Env and OnDecide are set by the runner.
	Engine core.Config
	// Deadline bounds virtual time (0 = run to drain).
	Deadline types.Time
	// MaxEvents bounds the number of simulation events (0 = unlimited).
	MaxEvents uint64
	// ProposeAt schedules process i's Propose at ProposeAt[i] (default 0).
	ProposeAt map[types.ProcID]types.Duration
	// Obs, if non-nil, attaches live telemetry: per-process RB and dedup
	// bundles labeled proc="<id>". Passive — observed runs are
	// trace-identical to unobserved ones.
	Obs *obs.Registry
}

// Result is the outcome of one execution.
type Result struct {
	// Decisions holds the decided value of every process that decided.
	Decisions map[types.ProcID]types.Value
	// DecideTime and DecideRound record when/at which round each decided.
	DecideTime  map[types.ProcID]types.Time
	DecideRound map[types.ProcID]types.Round
	// Stalled lists correct processes that hit the MaxRounds cap.
	Stalled []types.ProcID
	// Correct lists the correct processes of the run, ascending.
	Correct []types.ProcID
	// Messages is the total point-to-point message count.
	Messages uint64
	// Duplicates counts messages dropped by the first-message rule.
	Duplicates uint64
	// End is the virtual time when the run stopped; Stop says why.
	End  types.Time
	Stop sim.StopReason
	// Events is the number of simulation events executed.
	Events uint64
	// Compactions counts event-heap compaction passes (canceled-timer
	// reclamation in the kernel; see sim.Scheduler).
	Compactions uint64
	// Log is the trace (nil unless Spec.Record).
	Log *trace.Log
	// Engines gives access to per-process engine state (introspection).
	Engines map[types.ProcID]*core.Engine
}

// AllDecided reports whether every correct process decided.
func (r *Result) AllDecided() bool {
	for _, id := range r.Correct {
		if _, ok := r.Decisions[id]; !ok {
			return false
		}
	}
	return len(r.Correct) > 0
}

// CommonDecision returns the unique decided value if all correct processes
// decided and agree.
func (r *Result) CommonDecision() (types.Value, bool) {
	if !r.AllDecided() {
		return "", false
	}
	ref := r.Decisions[r.Correct[0]]
	for _, id := range r.Correct[1:] {
		if r.Decisions[id] != ref {
			return "", false
		}
	}
	return ref, true
}

// MaxDecideRound returns the largest decision round among correct
// processes (0 if none decided).
func (r *Result) MaxDecideRound() types.Round {
	var max types.Round
	for _, id := range r.Correct {
		if rd, ok := r.DecideRound[id]; ok && rd > max {
			max = rd
		}
	}
	return max
}

// MaxDecideTime returns the latest decision instant among correct
// processes (0 if none decided).
func (r *Result) MaxDecideTime() types.Time {
	var max types.Time
	for _, id := range r.Correct {
		if dt, ok := r.DecideTime[id]; ok && dt > max {
			max = dt
		}
	}
	return max
}

// Run executes the spec.
func Run(spec Spec) (*Result, error) {
	p := spec.Params
	if err := p.Validate(spec.Engine.BotMode); err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	if len(spec.Byzantine) > p.T {
		return nil, fmt.Errorf("runner: %d Byzantine processes exceed t=%d", len(spec.Byzantine), p.T)
	}
	for _, id := range p.AllProcs() {
		_, isC := spec.Proposals[id]
		_, isB := spec.Byzantine[id]
		if isC == isB {
			return nil, fmt.Errorf("runner: process %v must be exactly one of correct/Byzantine", id)
		}
	}
	w, err := harness.New(harness.Config{
		Params:   p,
		Topology: spec.Topology,
		Policy:   spec.Policy,
		Adv:      spec.Adv,
		FIFO:     spec.FIFO,
		Seed:     spec.Seed,
		Record:   spec.Record,
		BotOK:    spec.Engine.BotMode,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}

	res := &Result{
		Decisions:   make(map[types.ProcID]types.Value),
		DecideTime:  make(map[types.ProcID]types.Time),
		DecideRound: make(map[types.ProcID]types.Round),
		Engines:     make(map[types.ProcID]*core.Engine),
	}
	for _, id := range p.AllProcs() {
		id := id
		if b, ok := spec.Byzantine[id]; ok {
			if err := w.SetBehavior(id, b); err != nil {
				return nil, fmt.Errorf("runner: %w", err)
			}
			continue
		}
		res.Correct = append(res.Correct, id)
		v := spec.Proposals[id]
		var engErr error
		err := w.SetBehavior(id, func(env proto.Env) proto.Handler {
			cfg := spec.Engine
			cfg.Env = env
			if spec.Obs != nil {
				cfg.RBMetrics = obs.NewRBMetrics(spec.Obs, procLabel(id))
			}
			cfg.OnDecide = func(dv types.Value) {
				res.Decisions[id] = dv
				res.DecideTime[id] = env.Now()
				res.DecideRound[id] = res.Engines[id].DecidedRound()
			}
			eng, err := core.New(cfg)
			if err != nil {
				engErr = err
				return proto.HandlerFunc(func(types.ProcID, proto.Message) {})
			}
			res.Engines[id] = eng
			at := spec.ProposeAt[id]
			env.SetTimer(at, func() {
				if err := eng.Propose(v); err != nil {
					engErr = err
				}
			})
			return eng
		})
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		if engErr != nil {
			return nil, fmt.Errorf("runner: engine %v: %w", id, engErr)
		}
		wireObs(w, id, spec.Obs)
	}

	res.Stop = w.Run(spec.Deadline, spec.MaxEvents)
	res.End = w.Sched.Now()
	res.Events = w.Sched.Executed
	res.Compactions = w.Sched.Compactions
	res.Messages = w.Net.Sent()
	res.Duplicates = w.DroppedDuplicates()
	res.Log = w.Log
	for id, eng := range res.Engines {
		if eng.Stalled() {
			res.Stalled = append(res.Stalled, id)
		}
	}
	return res, nil
}
