// Package obs is the live telemetry layer: a registry of named counters,
// gauges and fixed-bucket histograms that every working layer of the
// stack (log engine, state machine, KV store, snapshot transfer, message
// dedup, reliable broadcast, wire transport) increments as it runs.
//
// Design constraints, in order:
//
//  1. The hot path is lock-free and allocation-free. Registration takes a
//     mutex once; after that every Add/Set/Observe is a plain atomic on a
//     pre-registered cell. TestHotPathAllocs pins the zero-allocation
//     property with testing.AllocsPerRun.
//  2. Observation must not perturb the observed world. Instruments never
//     schedule events, never branch protocol behavior, and are threaded
//     as nil-able pointers so an unobserved run pays one predictable nil
//     check per site — the golden scenario digests stay byte-identical
//     with a registry attached (see internal/scenario's determinism
//     test).
//  3. Snapshots are consistent enough for monitoring: readers see each
//     cell atomically, not the registry at one instant. That is the
//     standard Prometheus client contract.
//
// Metric names follow Prometheus conventions (`minsync_<layer>_<what>_total`
// for counters); labels ride inside the name string (build them with
// Name), and the text-exposition writer groups series into families by
// splitting at the label brace. The full catalogue lives in
// docs/observability.md.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is usable;
// all methods are safe on a nil receiver (no-ops), so instrumented code
// can hold optional counters without guarding every increment.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (callers must pass non-negative deltas; counters only go up).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (pipeline depth, live instances,
// session count). Safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of int64 observations (commit
// latencies in nanoseconds, payload sizes in bytes). Buckets are
// cumulative-upper-bound style à la Prometheus: counts[i] counts
// observations v <= bounds[i] and counts[len(bounds)] is the +Inf
// overflow bucket. Observe is lock-free and allocation-free; bounds are
// immutable after construction. Safe on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
}

// newHistogram builds a histogram over strictly ascending bounds. It
// copies the slice so callers cannot mutate the layout afterwards.
func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Bucket selection is a hand-rolled binary
// search (sort.Search takes a closure, and the hot path must not allocate
// even when the compiler is having a bad day).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank, the same estimator
// Prometheus's histogram_quantile uses. Observations in the +Inf bucket
// clamp to the largest finite bound. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp
				return float64(h.bounds[len(h.bounds)-1])
			}
			var lower float64
			if i > 0 {
				lower = float64(h.bounds[i-1])
			}
			upper := float64(h.bounds[i])
			if n == 0 {
				return upper
			}
			return lower + (upper-lower)*((rank-cum)/n)
		}
		cum += n
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Bounds returns the bucket upper bounds (shared; callers must not
// mutate). Nil receiver returns nil.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a fresh copy of the per-bucket counts, the last
// entry being the +Inf bucket. Nil receiver returns nil.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefaultLatencyBuckets returns a 1-2-5 ladder of nanosecond bounds from
// 10µs to 100s — wide enough for both virtual-time simulation latencies
// (milliseconds) and live TCP round trips.
func DefaultLatencyBuckets() []int64 {
	var out []int64
	for base := int64(10_000); base <= 10_000_000_000; base *= 10 {
		out = append(out, base, 2*base, 5*base)
	}
	return append(out, 100_000_000_000) // 100s
}

// Registry holds named instruments. Registration (Counter, Gauge,
// Histogram) is mutex-guarded and idempotent — asking for an existing
// name returns the existing cell, so independent layers can share a
// series. Asking for a name already registered as a different instrument
// type panics: that is a programming error, not a runtime condition.
//
// A nil *Registry is valid and returns nil instruments everywhere, which
// in turn no-op — "telemetry off" needs no branches in calling code.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter registers (or finds) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers (or finds) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram registers (or finds) the named histogram. bounds apply only
// on first registration (nil = DefaultLatencyBuckets); later callers get
// the existing cell regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, kindHistogram)
	h := newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// instrumentKind tags the three registry maps for cross-type collision
// checks.
type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

// checkFree panics if name is held by an instrument of another type.
// Callers hold r.mu; want is the map the caller already probed.
func (r *Registry) checkFree(name string, want instrumentKind) {
	if _, ok := r.counters[name]; ok && want != kindCounter {
		panic("obs: " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && want != kindGauge {
		panic("obs: " + name + " already registered as a gauge")
	}
	if _, ok := r.histograms[name]; ok && want != kindHistogram {
		panic("obs: " + name + " already registered as a histogram")
	}
}

// Snapshot is a point-in-time copy of every registered series, suitable
// for JSON status endpoints and matrix dumps. Cells are read atomically
// but not simultaneously (the monitoring contract).
type Snapshot struct {
	// Counters maps full series name (labels included) to count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps full series name to current level.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps full series name to its distribution.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen distribution of one histogram.
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations.
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for the +Inf bucket.
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Snapshot copies every series. Nil receiver returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.Bounds(),
			Counts: h.BucketCounts(),
		}
	}
	return s
}

// names returns all registered series names, sorted, while holding r.mu.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name assembles a full series name from a base metric name and label
// pairs: Name("x_total", "proc", "1") == `x_total{proc="1"}`. No labels
// returns the base unchanged. Values are used verbatim (callers pass
// identifiers, not arbitrary strings). Panics on an odd pair count.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Name needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// JoinLabels merges label bodies (the part between braces) into one,
// skipping empties: JoinLabels(`proc="1"`, `kind="echo"`) ==
// `proc="1",kind="echo"`.
func JoinLabels(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	return b.String()
}

// WithLabels attaches a pre-joined label body to a base name
// (WithLabels("x_total", `proc="1"`) == `x_total{proc="1"}`); an empty
// body returns the base unchanged.
func WithLabels(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}
