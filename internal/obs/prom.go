package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): series grouped into families by
// base name, one `# TYPE` line per family, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`. Output
// order is deterministic (families and series sorted lexically), which
// the exposition golden test pins. Safe on a nil receiver (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type series struct {
		name string // full name, labels included
		kind instrumentKind
	}
	all := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		all = append(all, series{n, kindCounter})
	}
	for n := range r.gauges {
		all = append(all, series{n, kindGauge})
	}
	for n := range r.histograms {
		all = append(all, series{n, kindHistogram})
	}
	counters := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		fi, fj := familyOf(all[i].name), familyOf(all[j].name)
		if fi != fj {
			return fi < fj
		}
		return all[i].name < all[j].name
	})

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range all {
		fam := familyOf(s.name)
		if fam != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			switch s.kind {
			case kindCounter:
				bw.WriteString(" counter\n")
			case kindGauge:
				bw.WriteString(" gauge\n")
			case kindHistogram:
				bw.WriteString(" histogram\n")
			}
			lastFamily = fam
		}
		switch s.kind {
		case kindCounter:
			bw.WriteString(s.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(counters[s.name], 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(s.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(gauges[s.name], 10))
			bw.WriteByte('\n')
		case kindHistogram:
			writeHistogram(bw, s.name, hists[s.name])
		}
	}
	return bw.Flush()
}

// familyOf strips the label body: `x_total{proc="1"}` → `x_total`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a full series name into base and label body
// (without braces); no labels yields ("name", "").
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// writeHistogram expands one histogram into its exposition series.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	base, labels := splitName(name)
	counts := h.BucketCounts()
	bounds := h.Bounds()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		writeSeries(bw, base+"_bucket", JoinLabels(labels, `le="`+strconv.FormatInt(b, 10)+`"`), strconv.FormatUint(cum, 10))
	}
	cum += counts[len(bounds)]
	writeSeries(bw, base+"_bucket", JoinLabels(labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
	writeSeries(bw, base+"_sum", labels, strconv.FormatInt(h.Sum(), 10))
	writeSeries(bw, base+"_count", labels, strconv.FormatUint(h.Count(), 10))
}

// writeSeries emits one `name{labels} value` line. The label body is
// pre-quoted (le labels arrive already wrapped).
func writeSeries(bw *bufio.Writer, base, labels, value string) {
	bw.WriteString(WithLabels(base, labels))
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}
