package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics exercises the nil-safety contract: every method
// must be a no-op on nil instruments so uninstrumented code paths need no
// guards.
func TestCounterGaugeBasics(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(123)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not inert")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}

	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("re-registration must return the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("cross-type reuse must panic")
			}
		}()
		reg.Gauge("a")
	}()
}

// TestHistogramQuantile checks bucket selection and the interpolating
// estimator against a known distribution.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 20, 50, 100})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Rank 50 tops the (20, 50] bucket: lower 20, upper 50, 30
	// observations, 20 below → 20 + 30·(30/30) = 50, the exact median.
	if got := h.Quantile(0.5); got < 49.9 || got > 50.1 {
		t.Fatalf("p50 = %v, want ≈50", got)
	}
	// Everything fits under the top bound, p100 = 100.
	if got := h.Quantile(1.0); got < 99.9 || got > 100.1 {
		t.Fatalf("p100 = %v, want ≈100", got)
	}
	// Overflow clamps to the top finite bound.
	h.Observe(10_000)
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("overflow quantile = %v, want clamp to 100", got)
	}
	// Monotone bounds enforced.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-ascending bounds must panic")
			}
		}()
		newHistogram([]int64{5, 5})
	}()
}

// TestRegistryConcurrency hammers registration, increments and snapshots
// from parallel goroutines; run under -race this is the data-race gate
// for the lock-free hot path.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("minsync_test_total")
			g := reg.Gauge("minsync_test_depth")
			h := reg.Histogram("minsync_test_ns", []int64{10, 100, 1000})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1500))
			}
		}()
	}
	// Snapshot and render while writers are live: readers must never
	// block or race the hot path.
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 50; i++ {
				_ = reg.Snapshot()
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	if got := reg.Counter("minsync_test_total").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := reg.Histogram("minsync_test_ns", nil).Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestHotPathAllocs pins the zero-allocation property of the increment
// path — the whole point of threading pre-registered cells through the
// kernel-grade hot paths.
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("minsync_alloc_total")
	g := reg.Gauge("minsync_alloc_depth")
	h := NewCommitLatency(reg)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		h.Observe(1_500_000)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per run, want 0", n)
	}
}

// TestWritePrometheusGolden pins the text exposition format byte for
// byte: family grouping, TYPE lines, histogram bucket expansion,
// deterministic ordering.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("minsync_log_committed_total", "proc", "1")).Add(12)
	reg.Counter(Name("minsync_log_committed_total", "proc", "2")).Add(9)
	reg.Gauge("minsync_dedup_live_instances").Set(3)
	h := reg.Histogram("minsync_commit_latency_ns", []int64{1000, 10000})
	h.Observe(500)
	h.Observe(5000)
	h.Observe(99999)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE minsync_commit_latency_ns histogram
minsync_commit_latency_ns_bucket{le="1000"} 1
minsync_commit_latency_ns_bucket{le="10000"} 2
minsync_commit_latency_ns_bucket{le="+Inf"} 3
minsync_commit_latency_ns_sum 105499
minsync_commit_latency_ns_count 3
# TYPE minsync_dedup_live_instances gauge
minsync_dedup_live_instances 3
# TYPE minsync_log_committed_total counter
minsync_log_committed_total{proc="1"} 12
minsync_log_committed_total{proc="2"} 9
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNameHelpers covers the label assembly helpers used by every
// bundle constructor.
func TestNameHelpers(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("Name no labels = %q", got)
	}
	if got := Name("x_total", "proc", "1", "kind", "echo"); got != `x_total{proc="1",kind="echo"}` {
		t.Fatalf("Name = %q", got)
	}
	if got := JoinLabels("", `a="1"`, "", `b="2"`); got != `a="1",b="2"` {
		t.Fatalf("JoinLabels = %q", got)
	}
	if got := WithLabels("x", ""); got != "x" {
		t.Fatalf("WithLabels empty = %q", got)
	}
	if got := WithLabels("x", `a="1"`); got != `x{a="1"}` {
		t.Fatalf("WithLabels = %q", got)
	}
}

// TestWireMetrics checks kind clamping and per-peer routing.
func TestWireMetrics(t *testing.T) {
	reg := NewRegistry()
	kindName := func(k int) string { return map[int]string{1: "rb-init", 2: "rb-echo"}[k] }
	m := NewWireMetrics(reg, `proc="1"`, 2, kindName, []int{2, 3})
	m.Sent(1, 2, 100)
	m.Sent(2, 3, 50)
	m.Sent(99, 2, 7) // out of range → "other"
	m.Recv(2, 3, 25)
	m.Recv(2, 99, 25) // unknown peer: kind series still counts
	if got := m.FramesSent[1].Value(); got != 1 {
		t.Fatalf("frames sent kind 1 = %d", got)
	}
	if got := m.BytesSent[0].Value(); got != 7 {
		t.Fatalf("other bytes = %d", got)
	}
	if got := m.PeerSent[2].Value(); got != 2 {
		t.Fatalf("peer 2 sent = %d", got)
	}
	if got := m.FramesRecv[2].Value(); got != 2 {
		t.Fatalf("frames recv kind 2 = %d", got)
	}
	var nilM *WireMetrics
	nilM.Sent(1, 2, 3) // must not panic
	nilM.Recv(1, 2, 3)
}
