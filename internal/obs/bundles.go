package obs

import "strconv"

// This file defines the per-layer metric bundles: plain structs of
// pre-registered instruments that the protocol packages hold as nil-able
// pointers. Each New*Metrics constructor returns nil when the registry is
// nil, and every instrument method no-ops on nil, so an uninstrumented
// run costs exactly one nil check per site.
//
// The labels argument is a pre-joined label body (usually `proc="3"`,
// built with Name/JoinLabels) stamped onto every series the bundle
// registers; pass "" for a single-process registry. Metric names are
// catalogued in docs/observability.md.

// LogMetrics instruments the replicated-log engine (internal/log).
type LogMetrics struct {
	// Proposals counts batch proposals started; ProposedCommands the
	// commands inside them; Committed the commands applied from decided
	// instances; NoOps the decided ⊥ instances.
	Proposals        *Counter
	ProposedCommands *Counter
	Committed        *Counter
	NoOps            *Counter
	// DroppedAhead / DroppedRetired count messages discarded by the
	// MaxLead window and the compaction floor.
	DroppedAhead   *Counter
	DroppedRetired *Counter
	// Compactions counts Compact calls that retired at least one
	// instance; RetiredInstances the instances they released.
	Compactions      *Counter
	RetiredInstances *Counter
	// SnapshotInstalls counts InstallSnapshot adoptions (state transfer).
	SnapshotInstalls *Counter
	// AppliedInstances / PendingCommands / PipelineDepth are live levels:
	// contiguously applied instances, queued-but-unproposed commands, and
	// open (proposed, undecided) instances.
	AppliedInstances *Gauge
	PendingCommands  *Gauge
	PipelineDepth    *Gauge
}

// NewLogMetrics registers the log-engine bundle.
func NewLogMetrics(r *Registry, labels string) *LogMetrics {
	if r == nil {
		return nil
	}
	return &LogMetrics{
		Proposals:        r.Counter(WithLabels("minsync_log_proposals_total", labels)),
		ProposedCommands: r.Counter(WithLabels("minsync_log_proposed_commands_total", labels)),
		Committed:        r.Counter(WithLabels("minsync_log_committed_total", labels)),
		NoOps:            r.Counter(WithLabels("minsync_log_noop_instances_total", labels)),
		DroppedAhead:     r.Counter(WithLabels("minsync_log_dropped_ahead_total", labels)),
		DroppedRetired:   r.Counter(WithLabels("minsync_log_dropped_retired_total", labels)),
		Compactions:      r.Counter(WithLabels("minsync_log_compactions_total", labels)),
		RetiredInstances: r.Counter(WithLabels("minsync_log_instances_retired_total", labels)),
		SnapshotInstalls: r.Counter(WithLabels("minsync_log_snapshot_installs_total", labels)),
		AppliedInstances: r.Gauge(WithLabels("minsync_log_applied_instances", labels)),
		PendingCommands:  r.Gauge(WithLabels("minsync_log_pending_commands", labels)),
		PipelineDepth:    r.Gauge(WithLabels("minsync_log_pipeline_depth", labels)),
	}
}

// SMMetrics instruments the state-machine applier (internal/sm).
type SMMetrics struct {
	// Applies counts committed entries fed to the machine; Snapshots the
	// snapshots taken and SnapshotBytes their encoded sizes; Recoveries
	// successful crash-recoveries; Installs adopted peer snapshots.
	Applies       *Counter
	Snapshots     *Counter
	SnapshotBytes *Counter
	Recoveries    *Counter
	Installs      *Counter
}

// NewSMMetrics registers the applier bundle.
func NewSMMetrics(r *Registry, labels string) *SMMetrics {
	if r == nil {
		return nil
	}
	return &SMMetrics{
		Applies:       r.Counter(WithLabels("minsync_sm_applies_total", labels)),
		Snapshots:     r.Counter(WithLabels("minsync_sm_snapshots_total", labels)),
		SnapshotBytes: r.Counter(WithLabels("minsync_sm_snapshot_bytes_total", labels)),
		Recoveries:    r.Counter(WithLabels("minsync_sm_recoveries_total", labels)),
		Installs:      r.Counter(WithLabels("minsync_sm_installs_total", labels)),
	}
}

// KVMetrics instruments the KV store's session layer (internal/kv).
type KVMetrics struct {
	// Applies counts state-mutating executions; SessionDups retried
	// commands answered from the session cache; SessionStales rejected
	// out-of-order session sequence numbers; BadCommands undecodable
	// commands.
	Applies       *Counter
	SessionDups   *Counter
	SessionStales *Counter
	BadCommands   *Counter
	// Keys and Sessions are live table sizes.
	Keys     *Gauge
	Sessions *Gauge
}

// NewKVMetrics registers the KV-store bundle.
func NewKVMetrics(r *Registry, labels string) *KVMetrics {
	if r == nil {
		return nil
	}
	return &KVMetrics{
		Applies:       r.Counter(WithLabels("minsync_kv_applies_total", labels)),
		SessionDups:   r.Counter(WithLabels("minsync_kv_session_dups_total", labels)),
		SessionStales: r.Counter(WithLabels("minsync_kv_session_stales_total", labels)),
		BadCommands:   r.Counter(WithLabels("minsync_kv_bad_commands_total", labels)),
		Keys:          r.Gauge(WithLabels("minsync_kv_keys", labels)),
		Sessions:      r.Gauge(WithLabels("minsync_kv_sessions", labels)),
	}
}

// TransferMetrics instruments snapshot state transfer (sm.Transfer).
type TransferMetrics struct {
	// Requests counts fetches broadcast by this replica; Served snapshots
	// it answered to laggards; Installs corroborated snapshots it
	// adopted; Rejected candidate payloads discarded (stale boundary,
	// malformed, digest mismatch, overflow).
	Requests *Counter
	Served   *Counter
	Installs *Counter
	Rejected *Counter
	// ChunksServed counts chunk frames sent to downloaders;
	// ChunksReceived chunk frames accepted into a download;
	// ChunkRejected chunk/ack frames discarded (hash mismatch,
	// off-manifest range, stale digest).
	ChunksServed   *Counter
	ChunksReceived *Counter
	ChunkRejected  *Counter
}

// NewTransferMetrics registers the transfer bundle.
func NewTransferMetrics(r *Registry, labels string) *TransferMetrics {
	if r == nil {
		return nil
	}
	return &TransferMetrics{
		Requests:       r.Counter(WithLabels("minsync_transfer_requests_total", labels)),
		Served:         r.Counter(WithLabels("minsync_transfer_served_total", labels)),
		Installs:       r.Counter(WithLabels("minsync_transfer_installs_total", labels)),
		Rejected:       r.Counter(WithLabels("minsync_transfer_rejected_total", labels)),
		ChunksServed:   r.Counter(WithLabels("minsync_transfer_chunks_served_total", labels)),
		ChunksReceived: r.Counter(WithLabels("minsync_transfer_chunks_received_total", labels)),
		ChunkRejected:  r.Counter(WithLabels("minsync_transfer_chunk_rejected_total", labels)),
	}
}

// PoolMetrics instruments the admission-controlled command pool
// (internal/txpool) that fronts the log engine on a serving replica.
type PoolMetrics struct {
	// Admitted counts commands that entered the pool as fresh work;
	// Deduped arrivals that joined an already-pending (client, seq) entry
	// instead of proposing again; Shed arrivals rejected because the pool
	// was at capacity; Resolved pending entries answered by a committed
	// response; Expired pending entries dropped by the TTL sweep without
	// ever resolving.
	Admitted *Counter
	Deduped  *Counter
	Shed     *Counter
	Resolved *Counter
	Expired  *Counter
	// Pending is the live pool depth (entries admitted but not yet
	// resolved or expired).
	Pending *Gauge
}

// NewPoolMetrics registers the admission-pool bundle.
func NewPoolMetrics(r *Registry, labels string) *PoolMetrics {
	if r == nil {
		return nil
	}
	return &PoolMetrics{
		Admitted: r.Counter(WithLabels("minsync_pool_admitted_total", labels)),
		Deduped:  r.Counter(WithLabels("minsync_pool_deduped_total", labels)),
		Shed:     r.Counter(WithLabels("minsync_pool_shed_total", labels)),
		Resolved: r.Counter(WithLabels("minsync_pool_resolved_total", labels)),
		Expired:  r.Counter(WithLabels("minsync_pool_expired_total", labels)),
		Pending:  r.Gauge(WithLabels("minsync_pool_pending", labels)),
	}
}

// DedupMetrics instruments the per-process message dispatcher
// (proto.Node): first-message dedup and instance retirement.
type DedupMetrics struct {
	// DroppedDuplicates counts messages killed by the first-message rule;
	// DroppedRetired messages below the compaction floor;
	// RetiredInstances dedup sub-maps released by retirement.
	DroppedDuplicates *Counter
	DroppedRetired    *Counter
	RetiredInstances  *Counter
	// LiveInstances is the number of instances currently holding dedup
	// state.
	LiveInstances *Gauge
}

// NewDedupMetrics registers the dispatcher bundle.
func NewDedupMetrics(r *Registry, labels string) *DedupMetrics {
	if r == nil {
		return nil
	}
	return &DedupMetrics{
		DroppedDuplicates: r.Counter(WithLabels("minsync_dedup_dropped_total", labels)),
		DroppedRetired:    r.Counter(WithLabels("minsync_dedup_dropped_retired_total", labels)),
		RetiredInstances:  r.Counter(WithLabels("minsync_dedup_retired_instances_total", labels)),
		LiveInstances:     r.Gauge(WithLabels("minsync_dedup_live_instances", labels)),
	}
}

// RBMetrics instruments reliable broadcast (internal/rb) — the Θ(n²)
// echo/ready amplification volume that dominates wire traffic.
type RBMetrics struct {
	// Broadcasts counts RB_Broadcast invocations; Echoes and Readies the
	// ECHO/READY messages this process originated; Delivers the RB
	// deliveries handed up the stack.
	Broadcasts *Counter
	Echoes     *Counter
	Readies    *Counter
	Delivers   *Counter
	// The coalescing-relay instruments (rb.Relay). FramesCoalesced counts
	// vector frames this process flushed; FrameEntries is the
	// entries-per-frame distribution (the coalescing factor); Pulls counts
	// hash-before-value resolution requests sent; ParkDrops counts entries
	// discarded because the parking lot was full (pressure from
	// hash-without-value starvation attacks).
	FramesCoalesced *Counter
	FrameEntries    *Histogram
	Pulls           *Counter
	ParkDrops       *Counter
}

// FrameEntriesBuckets are the entries-per-frame histogram bounds: the
// interesting range spans "no coalescing happened" (1) through the
// pipeline-wide batches of a loaded large-n run.
var FrameEntriesBuckets = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500}

// NewRBMetrics registers the reliable-broadcast bundle.
func NewRBMetrics(r *Registry, labels string) *RBMetrics {
	if r == nil {
		return nil
	}
	return &RBMetrics{
		Broadcasts:      r.Counter(WithLabels("minsync_rb_broadcasts_total", labels)),
		Echoes:          r.Counter(WithLabels("minsync_rb_echoes_total", labels)),
		Readies:         r.Counter(WithLabels("minsync_rb_readies_total", labels)),
		Delivers:        r.Counter(WithLabels("minsync_rb_delivers_total", labels)),
		FramesCoalesced: r.Counter(WithLabels("minsync_rb_frames_coalesced_total", labels)),
		FrameEntries:    r.Histogram(WithLabels("minsync_rb_frame_entries", labels), FrameEntriesBuckets),
		Pulls:           r.Counter(WithLabels("minsync_rb_pulls_total", labels)),
		ParkDrops:       r.Counter(WithLabels("minsync_rb_park_drops_total", labels)),
	}
}

// NodeMetrics instruments the live runtime loop (internal/rt).
type NodeMetrics struct {
	// Posted counts closures enqueued to the event loop (messages, timer
	// fires, local posts); InboxDepth is the loop backlog after the most
	// recent enqueue.
	Posted     *Counter
	InboxDepth *Gauge
}

// NewNodeMetrics registers the runtime bundle.
func NewNodeMetrics(r *Registry, labels string) *NodeMetrics {
	if r == nil {
		return nil
	}
	return &NodeMetrics{
		Posted:     r.Counter(WithLabels("minsync_rt_posted_total", labels)),
		InboxDepth: r.Gauge(WithLabels("minsync_rt_inbox_depth", labels)),
	}
}

// maxWireKind bounds the per-kind counter arrays in WireMetrics. Wire
// kinds are small positive integers (proto.MsgKind starts at 1); frames
// whose kind falls outside [1, maxWireKind) are counted under the
// kind="other" slot at index 0.
const maxWireKind = 16

// WireMetrics instruments a TCP transport (internal/netx): frames and
// bytes by direction and wire kind, per-peer frame counts, connection
// churn. Kind lookup is a direct array index so the per-frame cost is
// one atomic add per series.
type WireMetrics struct {
	// FramesSent/BytesSent and FramesRecv/BytesRecv are indexed by wire
	// kind (index 0 = out-of-range "other").
	FramesSent [maxWireKind]*Counter
	BytesSent  [maxWireKind]*Counter
	FramesRecv [maxWireKind]*Counter
	BytesRecv  [maxWireKind]*Counter
	// PeerSent/PeerRecv count frames exchanged with each configured peer.
	PeerSent map[int]*Counter
	PeerRecv map[int]*Counter
	// Connects counts successful dials (first connect and reconnects
	// alike); Rejected counts inbound frames discarded before dispatch.
	Connects *Counter
	Rejected *Counter
}

// NewWireMetrics registers the transport bundle. kinds is the number of
// valid wire kinds (kind values 1..kinds get their own series), kindName
// renders a kind label, and peers lists the remote process IDs.
func NewWireMetrics(r *Registry, labels string, kinds int, kindName func(int) string, peers []int) *WireMetrics {
	if r == nil {
		return nil
	}
	if kinds >= maxWireKind {
		kinds = maxWireKind - 1
	}
	m := &WireMetrics{
		PeerSent: make(map[int]*Counter, len(peers)),
		PeerRecv: make(map[int]*Counter, len(peers)),
		Connects: r.Counter(WithLabels("minsync_wire_connects_total", labels)),
		Rejected: r.Counter(WithLabels("minsync_wire_rejected_frames_total", labels)),
	}
	series := func(base, dir, kind string) *Counter {
		lbl := JoinLabels(labels, `dir="`+dir+`"`, `kind="`+kind+`"`)
		return r.Counter(WithLabels(base, lbl))
	}
	for k := 0; k <= kinds; k++ {
		kind := "other"
		if k > 0 {
			kind = kindName(k)
		}
		m.FramesSent[k] = series("minsync_wire_frames_total", "sent", kind)
		m.BytesSent[k] = series("minsync_wire_bytes_total", "sent", kind)
		m.FramesRecv[k] = series("minsync_wire_frames_total", "recv", kind)
		m.BytesRecv[k] = series("minsync_wire_bytes_total", "recv", kind)
	}
	for _, p := range peers {
		peer := strconv.Itoa(p)
		m.PeerSent[p] = r.Counter(WithLabels("minsync_wire_peer_frames_total",
			JoinLabels(labels, `dir="sent"`, `peer="`+peer+`"`)))
		m.PeerRecv[p] = r.Counter(WithLabels("minsync_wire_peer_frames_total",
			JoinLabels(labels, `dir="recv"`, `peer="`+peer+`"`)))
	}
	return m
}

// kindIndex clamps a wire kind into the counter arrays' index space.
func kindIndex(kind int) int {
	if kind <= 0 || kind >= maxWireKind {
		return 0
	}
	return kind
}

// Sent records one outbound frame of the given wire kind and body size.
// Safe on a nil receiver.
func (m *WireMetrics) Sent(kind, peer, bytes int) {
	if m == nil {
		return
	}
	i := kindIndex(kind)
	m.FramesSent[i].Inc()
	m.BytesSent[i].Add(uint64(bytes))
	m.PeerSent[peer].Inc()
}

// Recv records one inbound frame. Safe on a nil receiver.
func (m *WireMetrics) Recv(kind, peer, bytes int) {
	if m == nil {
		return
	}
	i := kindIndex(kind)
	m.FramesRecv[i].Inc()
	m.BytesRecv[i].Add(uint64(bytes))
	m.PeerRecv[peer].Inc()
}

// CommitLatencyName is the canonical commit-latency histogram series
// (nanoseconds, DefaultLatencyBuckets). Runners and live nodes register
// it so bench tooling can find it by name.
const CommitLatencyName = "minsync_commit_latency_ns"

// NewCommitLatency registers the end-to-end commit-latency histogram
// (submission → first local commit, in nanoseconds).
func NewCommitLatency(r *Registry) *Histogram {
	return r.Histogram(CommitLatencyName, nil)
}

// Stage keys for the per-command stage-latency breakdown (see
// internal/xtrace). Untyped so both obs and xtrace can share them.
const (
	StageAdmitWait = "admit_wait"
	StageBatchWait = "batch_wait"
	StageConsensus = "consensus"
	StageApply     = "apply"
	StageRespond   = "respond"
)

// StageNames lists the canonical command stages in pipeline order —
// the iteration order bench tooling and renderers use.
var StageNames = []string{StageAdmitWait, StageBatchWait, StageConsensus, StageApply, StageRespond}

// StageLatencyName is the canonical stage-latency histogram series
// (nanoseconds, DefaultLatencyBuckets, one cell per stage label).
const StageLatencyName = "minsync_stage_latency_ns"

// StageMetrics bundles the five per-command stage-latency histograms
// an xtrace.Tracer feeds. Passive; nil-safe like every bundle.
type StageMetrics struct {
	AdmitWait *Histogram
	BatchWait *Histogram
	Consensus *Histogram
	Apply     *Histogram
	Respond   *Histogram
}

// NewStageMetrics registers the stage-latency histograms under the
// given extra labels (each cell also carries stage="..."). Returns nil
// when r is nil so callers stay passive by default.
func NewStageMetrics(r *Registry, labels string) *StageMetrics {
	if r == nil {
		return nil
	}
	h := func(stage string) *Histogram {
		return r.Histogram(WithLabels(StageLatencyName, JoinLabels(labels, `stage="`+stage+`"`)), nil)
	}
	return &StageMetrics{
		AdmitWait: h(StageAdmitWait),
		BatchWait: h(StageBatchWait),
		Consensus: h(StageConsensus),
		Apply:     h(StageApply),
		Respond:   h(StageRespond),
	}
}

// Stage returns the histogram for a stage key (nil for unknown keys or
// a nil bundle).
func (m *StageMetrics) Stage(name string) *Histogram {
	if m == nil {
		return nil
	}
	switch name {
	case StageAdmitWait:
		return m.AdmitWait
	case StageBatchWait:
		return m.BatchWait
	case StageConsensus:
		return m.Consensus
	case StageApply:
		return m.Apply
	case StageRespond:
		return m.Respond
	}
	return nil
}

// Observe records one stage latency in nanoseconds. Nil-safe on the
// bundle and tolerant of unknown stage keys.
func (m *StageMetrics) Observe(stage string, ns int64) {
	if h := m.Stage(stage); h != nil {
		h.Observe(ns)
	}
}
