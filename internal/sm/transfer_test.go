package sm

import (
	"crypto/sha256"
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/log"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/types"
)

// --- Transfer codec ----------------------------------------------------------

func buildSnapshot(t *testing.T, entries int) (*Applier, Snapshot, []log.Entry) {
	t.Helper()
	a, err := New(Config{Machine: kv.NewStore(), SnapshotEvery: entries})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, 0, entries, 2, 0)
	s, ok := a.Latest()
	if !ok {
		t.Fatal("no snapshot taken")
	}
	retained := []log.Entry{
		{Index: s.Index - 1, Instance: s.Instance - 1, Cmd: "retained-cmd"},
	}
	return a, s, retained
}

func TestTransferRoundTrip(t *testing.T) {
	_, s, retained := buildSnapshot(t, 8)
	v := EncodeTransfer(s, retained)
	got, gotRetained, payload, err := DecodeTransfer(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != s.Index || got.Instance != s.Instance || got.Digest != s.Digest {
		t.Fatalf("snapshot drifted: got (%d,%v,%x), want (%d,%v,%x)",
			got.Index, got.Instance, got.Digest[:4], s.Index, s.Instance, s.Digest[:4])
	}
	if string(got.Data) != string(s.Data) {
		t.Fatal("snapshot bytes drifted")
	}
	if len(gotRetained) != 1 || gotRetained[0] != retained[0] {
		t.Fatalf("retained drifted: %+v", gotRetained)
	}
	var zero [32]byte
	if payload == zero {
		t.Fatal("zero payload digest")
	}
	// Same inputs, same payload digest (corroboration depends on it).
	_, _, payload2, err := DecodeTransfer(EncodeTransfer(s, retained))
	if err != nil || payload2 != payload {
		t.Fatalf("payload digest not deterministic: %x vs %x (%v)", payload[:4], payload2[:4], err)
	}
}

func TestTransferEmptyRetained(t *testing.T) {
	_, s, _ := buildSnapshot(t, 4)
	got, retained, _, err := DecodeTransfer(EncodeTransfer(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != s.Index || len(retained) != 0 {
		t.Fatalf("empty-retained round trip: %d entries", len(retained))
	}
}

func TestTransferRejectsTampering(t *testing.T) {
	_, s, retained := buildSnapshot(t, 8)
	valid := []byte(EncodeTransfer(s, retained))
	tests := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"flip body byte", func(b []byte) []byte { b[40] ^= 1; return b }},
		{"flip digest byte", func(b []byte) []byte { b[0] ^= 1; return b }},
		{"truncate", func(b []byte) []byte { return b[:len(b)-2] }},
		{"extend", func(b []byte) []byte { return append(b, 0) }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tt := range tests {
		b := append([]byte(nil), valid...)
		if _, _, _, err := DecodeTransfer(types.Value(tt.mutate(b))); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

// --- Applier.Install ---------------------------------------------------------

func TestInstallAdoptsPeerState(t *testing.T) {
	peer, s, retained := buildSnapshot(t, 8)
	lag, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	if err := lag.Install(s, retained); err != nil {
		t.Fatal(err)
	}
	if lag.Applied() != s.Index {
		t.Fatalf("applied=%d, want %d", lag.Applied(), s.Index)
	}
	if lag.Installs() != 1 {
		t.Fatalf("installs=%d", lag.Installs())
	}
	if lag.StateDigest() != peer.StateDigest() {
		t.Fatal("installed state does not match the peer's")
	}
	// The installed snapshot (and its retained suffix) is now servable
	// onward.
	got, gotRetained, ok := lag.LatestTransfer()
	if !ok || got.Digest != s.Digest || len(gotRetained) != len(retained) {
		t.Fatal("installed snapshot not retrievable for onward transfer")
	}
}

func TestInstallRejectsStaleAndForged(t *testing.T) {
	_, s, retained := buildSnapshot(t, 8)
	lag, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	// Stamp contradiction.
	bad := s
	bad.Index++
	if err := lag.Install(bad, retained); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("header/stamp contradiction accepted: %v", err)
	}
	// Digest contradiction.
	bad = s
	bad.Digest[0] ^= 1
	if err := lag.Install(bad, retained); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch accepted: %v", err)
	}
	// Garbage machine bytes: rejected without poisoning (kv.Store.Restore
	// is all-or-nothing).
	bad = s
	bad.Data = encodeSnapshot(s.Index, s.Instance, []byte("garbage"))
	bad.Digest = sha256.Sum256(bad.Data)
	if err := lag.Install(bad, retained); err == nil {
		t.Fatal("garbage machine bytes accepted")
	}
	if lag.Err() != nil {
		t.Fatalf("failed install poisoned the applier: %v", lag.Err())
	}
	// Stale boundary: not ahead of the live position.
	feed(t, lag, 0, 12, 2, 0)
	if err := lag.Install(s, retained); err == nil {
		t.Fatal("stale snapshot accepted")
	}
	if lag.Installs() != 0 {
		t.Fatalf("failed installs counted: %d", lag.Installs())
	}
}

// --- Transfer handler --------------------------------------------------------

// xferEnv is a scripted proto.Env for Transfer unit tests.
type xferEnv struct {
	id     types.ProcID
	params types.Params
	now    types.Time
	sent   []struct {
		to types.ProcID
		m  proto.Message
	}
	bcast  []proto.Message
	timers []func()
}

var _ proto.Env = (*xferEnv)(nil)

func (e *xferEnv) ID() types.ProcID     { return e.id }
func (e *xferEnv) Params() types.Params { return e.params }
func (e *xferEnv) Now() types.Time      { return e.now }
func (e *xferEnv) Send(to types.ProcID, m proto.Message) {
	e.sent = append(e.sent, struct {
		to types.ProcID
		m  proto.Message
	}{to, m})
}
func (e *xferEnv) Broadcast(m proto.Message) { e.bcast = append(e.bcast, m) }
func (e *xferEnv) SetTimer(d types.Duration, fn func()) (cancel func()) {
	e.timers = append(e.timers, fn)
	return func() {}
}
func (e *xferEnv) Trace() trace.Sink { return trace.Discard{} }

// fakeLog is a scripted LogControl.
type fakeLog struct {
	applied   types.Instance
	committed int
	closed    bool
	installs  []types.Instance
}

func (f *fakeLog) Applied() types.Instance { return f.applied }
func (f *fakeLog) Committed() int          { return f.committed }
func (f *fakeLog) Closed() bool            { return f.closed }
func (f *fakeLog) InstallSnapshot(b types.Instance, idx int, retained []log.Entry) error {
	f.installs = append(f.installs, b)
	f.applied = b
	f.committed = idx
	return nil
}

type sink struct{ msgs []proto.Message }

func (s *sink) OnMessage(from types.ProcID, m proto.Message) { s.msgs = append(s.msgs, m) }

func newTestTransfer(t *testing.T, app *Applier, lg *fakeLog) (*Transfer, *xferEnv, *sink) {
	t.Helper()
	env := &xferEnv{id: 1, params: types.Params{N: 4, T: 1}}
	next := &sink{}
	tr, err := NewTransfer(TransferConfig{Env: env, Applier: app, Log: lg, Next: next})
	if err != nil {
		t.Fatal(err)
	}
	return tr, env, next
}

func TestTransferServesAndDeclines(t *testing.T) {
	peer, s, _ := buildSnapshot(t, 8)
	tr, env, _ := newTestTransfer(t, peer, &fakeLog{applied: s.Instance, committed: s.Index})
	// Requester behind the snapshot boundary: served.
	tr.OnMessage(3, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: 0})
	if tr.Served() != 1 || len(env.sent) != 1 || env.sent[0].m.Kind != proto.MsgSnapResponse {
		t.Fatalf("serve: served=%d sent=%d", tr.Served(), len(env.sent))
	}
	if env.sent[0].m.Instance != s.Instance {
		t.Fatalf("response instance %v, want %v", env.sent[0].m.Instance, s.Instance)
	}
	// Immediate re-request: rate-limited.
	tr.OnMessage(3, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: 0})
	if tr.Served() != 1 {
		t.Fatalf("rate limit bypassed: served=%d", tr.Served())
	}
	// Requester at/past the boundary: declined.
	env.now += types.Time(time1s)
	tr.OnMessage(4, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: s.Instance})
	if tr.Served() != 1 {
		t.Fatalf("served a requester that was not behind: %d", tr.Served())
	}
}

const time1s = 1_000_000_000

func TestTransferInstallsOnCorroboration(t *testing.T) {
	_, s, retained := buildSnapshot(t, 8)
	lagApp, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	lg := &fakeLog{}
	tr, _, _ := newTestTransfer(t, lagApp, lg)
	resp := proto.Message{
		Kind: proto.MsgSnapResponse, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: s.Instance, Val: InlineTransfer(EncodeTransfer(s, retained)),
	}
	tr.OnMessage(2, resp)
	if tr.Installs() != 0 {
		t.Fatal("installed on a single sender (t+1 = 2 required)")
	}
	tr.OnMessage(2, resp) // same sender again: still one voice
	if tr.Installs() != 0 {
		t.Fatal("duplicate sender counted twice")
	}
	tr.OnMessage(3, resp)
	if tr.Installs() != 1 {
		t.Fatalf("installs=%d after t+1 distinct senders", tr.Installs())
	}
	if len(lg.installs) != 1 || lg.installs[0] != s.Instance {
		t.Fatalf("log install boundary: %v", lg.installs)
	}
	if lagApp.Applied() != s.Index {
		t.Fatalf("applier at %d, want %d", lagApp.Applied(), s.Index)
	}
}

func TestTransferRejectsForgedResponses(t *testing.T) {
	_, s, retained := buildSnapshot(t, 8)
	lagApp, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _ := newTestTransfer(t, lagApp, &fakeLog{})
	v := []byte(EncodeTransfer(s, retained))
	v[50] ^= 1 // corrupt the body
	tr.OnMessage(2, proto.Message{Kind: proto.MsgSnapResponse, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: s.Instance, Val: InlineTransfer(types.Value(v))})
	if tr.Rejected() != 1 || tr.Installs() != 0 {
		t.Fatalf("forged response: rejected=%d installs=%d", tr.Rejected(), tr.Installs())
	}
	// Frame/payload boundary contradiction.
	tr.OnMessage(2, proto.Message{Kind: proto.MsgSnapResponse, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: s.Instance + 1, Val: InlineTransfer(EncodeTransfer(s, retained))})
	if tr.Rejected() != 2 {
		t.Fatalf("boundary contradiction accepted: rejected=%d", tr.Rejected())
	}
}

func TestTransferForwardsProtocolTraffic(t *testing.T) {
	app, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, next := newTestTransfer(t, app, &fakeLog{})
	m := proto.Message{Kind: proto.MsgRBEcho, Tag: proto.Tag{Mod: proto.ModConsCB0}, Instance: 3, Origin: 2, Val: "v"}
	tr.OnMessage(2, m)
	if len(next.msgs) != 1 || next.msgs[0] != m {
		t.Fatalf("protocol traffic not forwarded: %+v", next.msgs)
	}
}

func TestTransferPressureTriggersFetch(t *testing.T) {
	app, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	tr, env, _ := newTestTransfer(t, app, &fakeLog{})
	tr.OnDroppedAhead(40)
	if tr.Requests() != 1 || len(env.bcast) != 1 || env.bcast[0].Kind != proto.MsgSnapRequest {
		t.Fatalf("pressure did not broadcast a request: requests=%d bcast=%d", tr.Requests(), len(env.bcast))
	}
	tr.OnDroppedAhead(41) // fetch already in flight: no second broadcast
	if tr.Requests() != 1 {
		t.Fatalf("duplicate fetch round: requests=%d", tr.Requests())
	}
}

// TestTransferIdleRejoinGap pins the idle-rejoin gap and its fix. A
// long-idle cluster churns ⊥ instances without entries, so the entry-
// cadence snapshot boundary freezes while the instance frontier runs
// ahead. A replica rejoining at that stale boundary is declined by
// serve() ("nothing the requester doesn't already have") forever — the
// gap. sm.Config.RefreshEvery closes it by re-stamping snapshots at
// no-op boundaries, and because refreshed payloads are byte-identical
// across correct replicas, t+1 corroboration still installs.
func TestTransferIdleRejoinGap(t *testing.T) {
	// build one cluster replica: 8 entries (snapshot at instance 4),
	// then an idle stretch of 16 entry-less instance boundaries.
	build := func(refresh types.Instance) *Applier {
		a, err := New(Config{Machine: kv.NewStore(), SnapshotEvery: 8, RefreshEvery: refresh})
		if err != nil {
			t.Fatal(err)
		}
		next := feed(t, a, 0, 8, 2, 0)
		for i := next; i < 20; i++ {
			a.OnApply(i, 0)
		}
		return a
	}

	// rejoiner: restarted into the idle cluster holding the pre-idle
	// boundary (instance 4) it transferred or recovered long ago.
	stalePeer := build(0)
	stale, ok := stalePeer.Latest()
	if !ok || stale.Instance != 4 {
		t.Fatalf("stale boundary = %+v, want instance 4", stale)
	}

	// The gap: every peer declines a requester already at the frozen
	// boundary, even though the frontier (instance 20) is far ahead.
	peerTr, peerEnv, _ := newTestTransfer(t, stalePeer, &fakeLog{applied: 20, committed: 8})
	peerTr.OnMessage(3, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: stale.Instance})
	if peerTr.Served() != 0 || len(peerEnv.sent) != 0 {
		t.Fatalf("stale-boundary peer served anyway: served=%d", peerTr.Served())
	}

	// The fix: with RefreshEvery the boundary was re-stamped during the
	// idle stretch (instance 19 > 4), so the same request is served...
	fresh1, fresh2 := build(5), build(5)
	s1, _ := fresh1.Latest()
	if s1.Instance != 19 {
		t.Fatalf("refreshed boundary = %v, want 19", s1.Instance)
	}
	srvTr, srvEnv, _ := newTestTransfer(t, fresh1, &fakeLog{applied: 20, committed: 8})
	srvTr.OnMessage(3, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: stale.Instance})
	if srvTr.Served() != 1 || len(srvEnv.sent) != 1 {
		t.Fatalf("refreshed peer declined: served=%d", srvTr.Served())
	}

	// ...and two independent replicas' refreshed payloads are byte-
	// identical, so the rejoiner's t+1 corroboration installs the fresh
	// boundary and it is caught up to the frontier's neighborhood.
	rejoinApp, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rejoinApp.Install(stale, nil); err != nil {
		t.Fatal(err)
	}
	lg := &fakeLog{applied: stale.Instance, committed: stale.Index}
	rejoinTr, _, _ := newTestTransfer(t, rejoinApp, lg)
	for i, peer := range []*Applier{fresh1, fresh2} {
		s, retained, ok := peer.LatestTransfer()
		if !ok {
			t.Fatal("refreshed peer has no snapshot")
		}
		rejoinTr.OnMessage(types.ProcID(2+i), proto.Message{
			Kind: proto.MsgSnapResponse, Tag: proto.Tag{Mod: proto.ModSnap},
			Instance: s.Instance, Val: InlineTransfer(EncodeTransfer(s, retained)),
		})
	}
	if rejoinTr.Installs() != 1 {
		t.Fatalf("refreshed snapshot not corroborated: installs=%d rejected=%d", rejoinTr.Installs(), rejoinTr.Rejected())
	}
	if lg.applied != 19 || rejoinApp.Applied() != 8 {
		t.Fatalf("rejoiner at (inst=%v, applied=%d), want (19, 8)", lg.applied, rejoinApp.Applied())
	}
}
