package sm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/log"
	"repro/internal/proto"
	"repro/internal/types"
)

// --- chunk codec -------------------------------------------------------------

func testPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/256)
	}
	return b
}

func TestManifestRoundTrip(t *testing.T) {
	for _, n := range []int{1, TransferChunkSize, TransferChunkSize + 1, 3*TransferChunkSize - 7} {
		payload := testPayload(n)
		mf, err := BuildManifest(9, 40, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantChunks := (n + TransferChunkSize - 1) / TransferChunkSize
		if mf.ChunkCount() != wantChunks {
			t.Fatalf("n=%d: chunk count %d, want %d", n, mf.ChunkCount(), wantChunks)
		}
		got, err := DecodeManifest(EncodeManifest(mf))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if got.Index != mf.Index || got.Instance != mf.Instance || got.TotalLen != mf.TotalLen ||
			got.Payload != mf.Payload || len(got.Hashes) != len(mf.Hashes) {
			t.Fatalf("n=%d: round trip mismatch: %+v vs %+v", n, got, mf)
		}
		for i := range mf.Hashes {
			if got.Hashes[i] != mf.Hashes[i] {
				t.Fatalf("n=%d: hash %d differs", n, i)
			}
		}
		// Geometry: chunk lengths must tile the payload exactly.
		total := 0
		for i := 0; i < mf.ChunkCount(); i++ {
			total += mf.ChunkLen(i)
		}
		if total != n {
			t.Fatalf("n=%d: chunk lengths tile %d bytes", n, total)
		}
	}
}

func TestBuildManifestBounds(t *testing.T) {
	if _, err := BuildManifest(0, 0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	// A payload needing more than MaxManifestChunks chunks is refused
	// (checked arithmetically — allocating it for real would be 1 GiB).
	if max := MaxManifestChunks * TransferChunkSize; max > 1<<32 {
		t.Skip("bound not reachable in test memory")
	}
}

func TestChunkRoundTrip(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	data := testPayload(1000)
	v := EncodeChunk(digest, 7, data)
	gd, gi, gdata, err := DecodeChunk(v)
	if err != nil {
		t.Fatal(err)
	}
	if gd != digest || gi != 7 || !bytes.Equal(gdata, data) {
		t.Fatal("chunk round trip mismatch")
	}
	// Empty chunk data is legal at the frame layer (the manifest's
	// per-chunk length check rejects it upstream when it lies).
	if _, _, d, err := DecodeChunk(EncodeChunk(digest, 0, nil)); err != nil || len(d) != 0 {
		t.Fatalf("empty chunk: %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	v := EncodeAck(digest, 3, TransferChunkWindow)
	gd, gf, gw, err := DecodeAck(v)
	if err != nil {
		t.Fatal(err)
	}
	if gd != digest || gf != 3 || gw != TransferChunkWindow {
		t.Fatal("ack round trip mismatch")
	}
}

func TestDecodeManifestRejectsMalformed(t *testing.T) {
	payload := testPayload(TransferChunkSize + 100)
	mf, err := BuildManifest(4, 20, payload)
	if err != nil {
		t.Fatal(err)
	}
	valid := EncodeManifest(mf)
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		substr string
	}{
		{"empty", func(b []byte) []byte { return nil }, "short"},
		{"short header", func(b []byte) []byte { return b[:manifestHeaderLen] }, "short"},
		{"index out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b, 1<<63)
			return b
		}, "position"},
		{"instance out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<63)
			return b
		}, "position"},
		{"zero chunks", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], 0)
			return b
		}, "count"},
		{"count over limit", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], MaxManifestChunks+1)
			return b
		}, "count"},
		{"zero length", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 0)
			return b
		}, "fill"},
		{"length does not fill chunks", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], TransferChunkSize) // 2 chunks claimed
			return b
		}, "fill"},
		{"length overflows chunks", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 3*TransferChunkSize)
			return b
		}, "fill"},
		{"missing hashes", func(b []byte) []byte { return b[:len(b)-32] }, "hold"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, "hold"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := tt.mutate(bytes.Clone(valid))
			if _, err := DecodeManifest(b); err == nil {
				t.Fatal("malformed manifest accepted")
			} else if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err, tt.substr)
			}
		})
	}
}

func TestDecodeChunkRejectsMalformed(t *testing.T) {
	digest := sha256.Sum256([]byte("p"))
	tests := []struct {
		name   string
		frame  []byte
		substr string
	}{
		{"empty", nil, "short"},
		{"short", make([]byte, chunkHeaderLen-1), "short"},
		{"oversized data", []byte(EncodeChunk(digest, 0, make([]byte, TransferChunkSize+1))), "chunk size"},
		{"index out of range", []byte(EncodeChunk(digest, MaxManifestChunks, []byte("x"))), "index"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, _, err := DecodeChunk(types.Value(tt.frame)); err == nil {
				t.Fatal("malformed chunk accepted")
			} else if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err, tt.substr)
			}
		})
	}
}

func TestDecodeAckRejectsMalformed(t *testing.T) {
	digest := sha256.Sum256([]byte("p"))
	tests := []struct {
		name   string
		frame  []byte
		substr string
	}{
		{"empty", nil, "ack frame"},
		{"short", make([]byte, ackFrameLen-1), "ack frame"},
		{"long", make([]byte, ackFrameLen+1), "ack frame"},
		{"range start out of range", []byte(EncodeAck(digest, MaxManifestChunks, 1)), "range start"},
		{"zero window", []byte(EncodeAck(digest, 0, 0)), "window"},
		{"window over limit", []byte(EncodeAck(digest, 0, TransferChunkWindow+1)), "window"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, _, err := DecodeAck(types.Value(tt.frame)); err == nil {
				t.Fatal("malformed ack accepted")
			} else if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err, tt.substr)
			}
		})
	}
}

// --- fuzzers -----------------------------------------------------------------

func FuzzDecodeChunk(f *testing.F) {
	digest := sha256.Sum256([]byte("payload"))
	f.Add([]byte(EncodeChunk(digest, 0, []byte("chunk-bytes"))))
	f.Add([]byte(EncodeChunk(digest, MaxManifestChunks-1, nil)))
	f.Add([]byte{})
	f.Add(make([]byte, chunkHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, idx, body, err := DecodeChunk(types.Value(data))
		if err != nil {
			return
		}
		// Valid decodes must re-encode canonically.
		if !bytes.Equal([]byte(EncodeChunk(d, idx, body)), data) {
			t.Fatalf("decode/encode not canonical for %x", data)
		}
	})
}

func FuzzDecodeManifest(f *testing.F) {
	small, _ := BuildManifest(1, 2, testPayload(10))
	multi, _ := BuildManifest(7, 30, testPayload(2*TransferChunkSize+5))
	f.Add(EncodeManifest(small))
	f.Add(EncodeManifest(multi))
	f.Add([]byte{})
	f.Add(make([]byte, manifestHeaderLen+chunkDigestLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeManifest(m), data) {
			t.Fatalf("decode/encode not canonical for %x", data)
		}
	})
}

func FuzzDecodeAck(f *testing.F) {
	digest := sha256.Sum256([]byte("payload"))
	f.Add([]byte(EncodeAck(digest, 0, 1)))
	f.Add([]byte(EncodeAck(digest, MaxManifestChunks-1, TransferChunkWindow)))
	f.Add([]byte{})
	f.Add(make([]byte, ackFrameLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, from, w, err := DecodeAck(types.Value(data))
		if err != nil {
			return
		}
		if !bytes.Equal([]byte(EncodeAck(d, from, w)), data) {
			t.Fatalf("decode/encode not canonical for %x", data)
		}
	})
}

// --- chunked transfer: protocol and aggressors -------------------------------

// buildBigSnapshot builds an applier whose transfer payload exceeds
// TransferInlineMax by several chunks: `vals` values of `valBytes`
// bytes each, snapshotted at the final entry.
func buildBigSnapshot(t *testing.T, vals, valBytes int) (*Applier, Snapshot, []log.Entry) {
	t.Helper()
	a, err := New(Config{Machine: kv.NewStore(), SnapshotEvery: vals})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", valBytes)
	inst := types.Instance(0)
	for i := 0; i < vals; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i + 1),
			Key: fmt.Sprintf("big%d", i), Val: fmt.Sprintf("%06d-%s", i, big)}
		a.OnCommit(log.Entry{Index: i, Instance: inst, Cmd: cmd.Encode()})
		a.OnApply(inst, 1)
		inst++
	}
	s, ok := a.Latest()
	if !ok {
		t.Fatal("no snapshot taken")
	}
	return a, s, nil
}

// chunkFixture wires a serving replica and a lagging replica and drives
// the protocol up to the corroborated download: the laggard has
// broadcast its fetch, both servers answered with the (identical)
// manifest, and the first range ack is sitting in the laggard's outbox.
type chunkFixture struct {
	server    *Transfer
	serverEnv *xferEnv
	lag       *Transfer
	lagEnv    *xferEnv
	lagApp    *Applier
	lagLog    *fakeLog
	mf        Manifest
	payload   []byte
	snap      Snapshot
}

func newChunkFixture(t *testing.T) *chunkFixture {
	t.Helper()
	app, s, retained := buildBigSnapshot(t, 3, 220<<10) // ~660 KiB state: 3 chunks
	serverLog := &fakeLog{applied: s.Instance, committed: s.Index}
	server, serverEnv, _ := newTestTransfer(t, app, serverLog)
	_ = serverEnv

	lagApp, err := New(Config{Machine: kv.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	lagLog := &fakeLog{}
	lag, lagEnv, _ := newTestTransfer(t, lagApp, lagLog)

	payload := []byte(EncodeTransfer(s, retained))
	if len(payload) <= TransferInlineMax {
		t.Fatalf("fixture state of %d bytes fits inline — not a chunk test", len(payload))
	}
	mf, err := BuildManifest(s.Index, s.Instance, payload)
	if err != nil {
		t.Fatal(err)
	}
	if mf.ChunkCount() < 3 {
		t.Fatalf("fixture produced %d chunks, want >= 3", mf.ChunkCount())
	}

	// Laggard under pressure: broadcasts SNAP_REQ.
	lag.OnDroppedAhead(40)
	if len(lagEnv.bcast) != 1 || lagEnv.bcast[0].Kind != proto.MsgSnapRequest {
		t.Fatal("no fetch broadcast")
	}
	// Server answers with the manifest form.
	server.OnMessage(1, proto.Message{Kind: proto.MsgSnapRequest, Tag: proto.Tag{Mod: proto.ModSnap}, Instance: 0})
	if len(serverEnv.sent) != 1 {
		t.Fatal("server did not serve")
	}
	resp := serverEnv.sent[0].m
	if resp.Kind != proto.MsgSnapResponse || []byte(resp.Val)[0] != TransferFormManifest {
		t.Fatalf("served form %v, want manifest", resp.Kind)
	}
	// Two distinct senders corroborate (t+1 = 2): download starts.
	lag.OnMessage(2, resp)
	if lag.Downloading() {
		t.Fatal("download started on a single manifest sender")
	}
	lag.OnMessage(3, resp)
	if !lag.Downloading() {
		t.Fatal("corroborated manifest did not start a download")
	}
	if n := len(lagEnv.sent); n == 0 || lagEnv.sent[n-1].m.Kind != proto.MsgSnapAck {
		t.Fatal("no range ack after download start")
	}
	return &chunkFixture{
		server: server, serverEnv: serverEnv,
		lag: lag, lagEnv: lagEnv, lagApp: lagApp, lagLog: lagLog,
		mf: mf, payload: payload, snap: s,
	}
}

// chunkFrame fabricates the chunk frame for index i of the fixture's
// genuine payload.
func (fx *chunkFixture) chunkFrame(i int) proto.Message {
	lo := i * TransferChunkSize
	hi := lo + fx.mf.ChunkLen(i)
	return proto.Message{
		Kind: proto.MsgSnapChunk, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: fx.mf.Instance,
		Val:      EncodeChunk(fx.mf.Payload, i, fx.payload[lo:hi]),
	}
}

func TestChunkedDownloadCompletes(t *testing.T) {
	fx := newChunkFixture(t)
	// The server answers the laggard's ack with every chunk (window 16
	// covers the whole payload).
	ack := fx.lagEnv.sent[len(fx.lagEnv.sent)-1].m
	before := len(fx.serverEnv.sent)
	fx.server.OnMessage(1, ack)
	frames := fx.serverEnv.sent[before:]
	if len(frames) != fx.mf.ChunkCount() {
		t.Fatalf("served %d chunk frames, want %d", len(frames), fx.mf.ChunkCount())
	}
	if fx.server.ChunksServed() != fx.mf.ChunkCount() {
		t.Fatalf("ChunksServed=%d", fx.server.ChunksServed())
	}
	for _, fr := range frames {
		fx.lag.OnMessage(2, fr.m)
	}
	if fx.lag.Installs() != 1 {
		t.Fatalf("installs=%d after full download", fx.lag.Installs())
	}
	if fx.lag.ChunksReceived() != fx.mf.ChunkCount() {
		t.Fatalf("ChunksReceived=%d", fx.lag.ChunksReceived())
	}
	if fx.lag.Downloading() {
		t.Fatal("download still marked in flight after install")
	}
	if len(fx.lagLog.installs) != 1 || fx.lagLog.installs[0] != fx.snap.Instance {
		t.Fatalf("log install boundary: %v", fx.lagLog.installs)
	}
	if fx.lagApp.StateDigest() != fx.snap.Digest {
		// StateDigest covers live state; compare via snapshot digest of
		// the restored machine instead.
		got, ok := fx.lagApp.Latest()
		if !ok || got.Digest != fx.snap.Digest {
			t.Fatal("installed state does not match the served snapshot")
		}
	}
}

// TestChunkForgeryRejected: a Byzantine server cannot corrupt an
// in-flight download — chunks whose bytes contradict the corroborated
// manifest (flipped data, off-manifest index, alien digest) are
// rejected or ignored without poisoning the slots, and the genuine
// chunks still install cleanly afterwards.
func TestChunkForgeryRejected(t *testing.T) {
	fx := newChunkFixture(t)

	// Flipped data: hash contradicts the manifest -> counted forgery.
	bad := fx.chunkFrame(1)
	raw := []byte(bad.Val)
	raw[chunkHeaderLen] ^= 1
	bad.Val = types.Value(raw)
	fx.lag.OnMessage(2, bad)
	if fx.lag.ChunkRejected() != 1 {
		t.Fatalf("forged chunk not counted: %d", fx.lag.ChunkRejected())
	}
	// Off-manifest range: index past the manifest's chunk count.
	fx.lag.OnMessage(2, proto.Message{
		Kind: proto.MsgSnapChunk, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: fx.mf.Instance,
		Val:      EncodeChunk(fx.mf.Payload, fx.mf.ChunkCount(), []byte("xx")),
	})
	if fx.lag.ChunkRejected() != 2 {
		t.Fatalf("off-manifest chunk not counted: %d", fx.lag.ChunkRejected())
	}
	// Wrong-length data for a valid index: counted forgery.
	fx.lag.OnMessage(2, proto.Message{
		Kind: proto.MsgSnapChunk, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: fx.mf.Instance,
		Val:      EncodeChunk(fx.mf.Payload, 0, []byte("short")),
	})
	if fx.lag.ChunkRejected() != 3 {
		t.Fatalf("truncated chunk not counted: %d", fx.lag.ChunkRejected())
	}
	// Alien digest: stale traffic for a superseded download, ignored
	// without offense.
	alien := sha256.Sum256([]byte("other-payload"))
	fx.lag.OnMessage(2, proto.Message{
		Kind: proto.MsgSnapChunk, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: fx.mf.Instance,
		Val:      EncodeChunk(alien, 0, []byte("zz")),
	})
	if fx.lag.ChunkRejected() != 3 {
		t.Fatalf("stale chunk counted as forgery: %d", fx.lag.ChunkRejected())
	}
	// Undecodable chunk frame: counted.
	fx.lag.OnMessage(2, proto.Message{
		Kind: proto.MsgSnapChunk, Tag: proto.Tag{Mod: proto.ModSnap},
		Instance: fx.mf.Instance, Val: "junk",
	})
	if fx.lag.ChunkRejected() != 4 {
		t.Fatalf("undecodable chunk not counted: %d", fx.lag.ChunkRejected())
	}

	// The genuine download is unharmed: all real chunks install.
	for i := 0; i < fx.mf.ChunkCount(); i++ {
		fx.lag.OnMessage(2, fx.chunkFrame(i))
	}
	if fx.lag.Installs() != 1 {
		t.Fatalf("installs=%d — forgeries corrupted the download", fx.lag.Installs())
	}
	got, ok := fx.lagApp.Latest()
	if !ok || got.Digest != fx.snap.Digest {
		t.Fatal("installed state does not match after forgery barrage")
	}
}

// TestChunkDuplicateDeliveryIdempotent: re-delivered chunks (overlapping
// re-requested ranges) are absorbed once.
func TestChunkDuplicateDeliveryIdempotent(t *testing.T) {
	fx := newChunkFixture(t)
	fx.lag.OnMessage(2, fx.chunkFrame(0))
	fx.lag.OnMessage(2, fx.chunkFrame(0)) // duplicate
	if fx.lag.ChunksReceived() != 1 {
		t.Fatalf("duplicate chunk counted: %d", fx.lag.ChunksReceived())
	}
	for i := 1; i < fx.mf.ChunkCount(); i++ {
		fx.lag.OnMessage(2, fx.chunkFrame(i))
	}
	if fx.lag.Installs() != 1 {
		t.Fatalf("installs=%d", fx.lag.Installs())
	}
}

// TestAckForgeryBounded: the serve side of the chunk protocol resists
// ack abuse — undecodable acks are counted, acks naming a superseded
// payload are ignored, replayed acks are rate-limited, and the window
// clamp caps what one ack can extract.
func TestAckForgeryBounded(t *testing.T) {
	fx := newChunkFixture(t)
	// Undecodable ack: counted as a chunk-protocol offense.
	fx.server.OnMessage(1, proto.Message{Kind: proto.MsgSnapAck, Tag: proto.Tag{Mod: proto.ModSnap}, Val: "junk"})
	if fx.server.ChunkRejected() != 1 {
		t.Fatalf("undecodable ack not counted: %d", fx.server.ChunkRejected())
	}
	// Ack naming an alien payload digest: stale, ignored without frames.
	alien := sha256.Sum256([]byte("other"))
	before := len(fx.serverEnv.sent)
	fx.server.OnMessage(1, proto.Message{
		Kind: proto.MsgSnapAck, Tag: proto.Tag{Mod: proto.ModSnap},
		Val: EncodeAck(alien, 0, TransferChunkWindow),
	})
	if len(fx.serverEnv.sent) != before {
		t.Fatal("alien-digest ack extracted chunk frames")
	}
	// Genuine ack: serves the window (clamped to the chunk count).
	genuine := proto.Message{
		Kind: proto.MsgSnapAck, Tag: proto.Tag{Mod: proto.ModSnap},
		Val: EncodeAck(fx.mf.Payload, 0, TransferChunkWindow),
	}
	fx.server.OnMessage(1, genuine)
	served := len(fx.serverEnv.sent) - before
	if served != fx.mf.ChunkCount() {
		t.Fatalf("served %d frames, want %d (clamped window)", served, fx.mf.ChunkCount())
	}
	// Immediate replay: rate-limited, zero frames.
	before = len(fx.serverEnv.sent)
	fx.server.OnMessage(1, genuine)
	if len(fx.serverEnv.sent) != before {
		t.Fatal("replayed ack bypassed the rate limit")
	}
	// After the rate-limit window passes, service resumes.
	fx.serverEnv.now += types.Time(time1s)
	fx.server.OnMessage(1, genuine)
	if len(fx.serverEnv.sent) != before+fx.mf.ChunkCount() {
		t.Fatal("service did not resume after the rate-limit window")
	}
	// A tail ack serves only the final chunks: range start clamps.
	fx.serverEnv.now += types.Time(time1s)
	before = len(fx.serverEnv.sent)
	fx.server.OnMessage(1, proto.Message{
		Kind: proto.MsgSnapAck, Tag: proto.Tag{Mod: proto.ModSnap},
		Val: EncodeAck(fx.mf.Payload, fx.mf.ChunkCount()-1, TransferChunkWindow),
	})
	if len(fx.serverEnv.sent) != before+1 {
		t.Fatalf("tail ack served %d frames, want 1", len(fx.serverEnv.sent)-before)
	}
}

// TestStalledDownloadReCorroborates pins the staleness escape hatch: a
// download whose acks are silently ignored (the servers' payload moved
// on) makes no progress, and after TransferStallLimit retry firings the
// fetcher abandons it, clears the manifest's corroboration, and
// re-requests. A single (Byzantine) replay of the dead manifest cannot
// restart the download — it takes t+1 fresh senders again.
func TestStalledDownloadReCorroborates(t *testing.T) {
	fx := newChunkFixture(t)
	if len(fx.lagEnv.timers) == 0 {
		t.Fatal("no retry timer armed")
	}
	reqsBefore := len(fx.lagEnv.bcast)
	// Fire the retry timer with zero progress until the stall limit
	// trips. Each firing re-arms (appends a fresh timer callback).
	for i := 0; i < TransferStallLimit; i++ {
		if !fx.lag.Downloading() {
			t.Fatalf("download abandoned after %d firings (limit %d)", i, TransferStallLimit)
		}
		fx.lagEnv.timers[len(fx.lagEnv.timers)-1]()
	}
	if fx.lag.Downloading() {
		t.Fatal("stalled download not abandoned at the limit")
	}
	if len(fx.lagEnv.bcast) != reqsBefore+1 {
		t.Fatalf("abandonment did not re-broadcast the fetch: %d", len(fx.lagEnv.bcast)-reqsBefore)
	}
	// The dead manifest's corroboration is gone: one replayed frame
	// (Byzantine echo of the stale body) must NOT restart the download.
	resp := fx.serverEnv.sent[0].m
	fx.lag.OnMessage(2, resp)
	if fx.lag.Downloading() {
		t.Fatal("single stale-manifest replay re-pinned the download")
	}
	// t+1 fresh senders DO restart it (the cluster still serves this
	// payload, so the abandonment was spurious — recovery must work).
	fx.lag.OnMessage(3, resp)
	if !fx.lag.Downloading() {
		t.Fatal("fresh t+1 corroboration did not restart the download")
	}
	// And the restarted download completes.
	for i := 0; i < fx.mf.ChunkCount(); i++ {
		fx.lag.OnMessage(2, fx.chunkFrame(i))
	}
	if fx.lag.Installs() != 1 {
		t.Fatalf("installs=%d after restart", fx.lag.Installs())
	}
}

// TestDownloadProgressResetsStallCounter: chunks arriving between retry
// firings keep the download alive past the stall limit.
func TestDownloadProgressResetsStallCounter(t *testing.T) {
	fx := newChunkFixture(t)
	for i := 0; i < fx.mf.ChunkCount()-1; i++ {
		// Two stalled firings (under the limit), then one chunk.
		fx.lagEnv.timers[len(fx.lagEnv.timers)-1]()
		fx.lagEnv.timers[len(fx.lagEnv.timers)-1]()
		fx.lag.OnMessage(2, fx.chunkFrame(i))
		fx.lagEnv.timers[len(fx.lagEnv.timers)-1]()
		if !fx.lag.Downloading() {
			t.Fatalf("download with progress abandoned at chunk %d", i)
		}
	}
	fx.lag.OnMessage(2, fx.chunkFrame(fx.mf.ChunkCount()-1))
	if fx.lag.Installs() != 1 {
		t.Fatalf("installs=%d", fx.lag.Installs())
	}
}
