// Durable boot: restarting a replica from its own disk instead of its
// peers.
//
// Boot is the read side of the write-ahead discipline Config.Persist
// drives (append entries before applying, mark applied boundaries,
// stamp snapshots as transfer payloads). It recovers the store, installs
// the stamped snapshot through the SAME validation path a live peer
// transfer uses (digest round-trip, position sanity), re-applies the WAL
// suffix to the machine, and hands the ordering layer its resume
// position (log.Engine.Resume). After Boot the replica serves its
// pre-crash state — applied prefix ⊇ fsync'd prefix — without asking a
// peer for anything.
package sm

import (
	"fmt"

	"repro/internal/log"
	"repro/internal/store"
	"repro/internal/types"
)

// BootControl is the slice of the log engine Boot realigns.
// log.Engine implements it (Resume); it must not have Started yet.
type BootControl interface {
	Resume(boundary types.Instance, base int, retained []log.Entry) error
}

// BootStats describes what a durable boot recovered.
type BootStats struct {
	// HadSnapshot reports whether a stamped snapshot was restored.
	HadSnapshot bool
	// SnapIndex / SnapInstance are the restored snapshot's position
	// (zero when HadSnapshot is false).
	SnapIndex    int
	SnapInstance types.Instance
	// Replayed counts WAL entries re-applied past the snapshot.
	Replayed int
	// Boundary is the instance frontier handed to the engine: the
	// highest durably marked applied boundary.
	Boundary types.Instance
}

// Boot restores a replica from its durable store: Recover the medium,
// install the stamped snapshot (if any) into the applier, replay the
// WAL entry suffix into the machine, and Resume the log engine at the
// recovered boundary. Call it after constructing the applier and engine
// but before Engine.Start; a fresh (empty) medium is a no-op and the
// replica starts clean.
//
// The WAL may hold entries below the snapshot index (a crash that outran
// the truncate marker) — they are skipped — and entries at or past the
// recovered boundary (a crash between an entry's append and its boundary
// mark) — they ARE replayed and seed the engine's dedup, so the cluster's
// re-decision of their instance commits only the remainder. Applied
// therefore covers everything fsync'd, never less.
func Boot(p store.Persister, a *Applier, eng BootControl) (BootStats, error) {
	var st BootStats
	if p == nil || a == nil || eng == nil {
		return st, fmt.Errorf("sm: boot needs a Persister, an Applier and an engine")
	}
	rec, err := p.Recover()
	if err != nil {
		return st, err
	}
	if rec.SnapPayload == nil && len(rec.Entries) == 0 && rec.Boundary == 0 {
		return st, nil // fresh medium: nothing to restore
	}
	// The stamped payload is a full transfer frame (snapshot + retained
	// dedup window); decode and install exactly as a peer transfer would.
	var combined []log.Entry
	base := 0
	if rec.SnapPayload != nil {
		s, retained, _, derr := DecodeTransfer(types.Value(rec.SnapPayload))
		if derr != nil {
			return st, fmt.Errorf("sm: boot snapshot payload: %w", derr)
		}
		if s.Index != rec.SnapIndex || s.Instance != rec.SnapInstance {
			return st, fmt.Errorf("sm: boot snapshot position (%d, %v) contradicts its stamp (%d, %v)",
				s.Index, s.Instance, rec.SnapIndex, rec.SnapInstance)
		}
		if err := a.installSnapshot(s, retained, true); err != nil {
			return st, fmt.Errorf("sm: boot install: %w", err)
		}
		st.HadSnapshot, st.SnapIndex, st.SnapInstance = true, s.Index, s.Instance
		combined = append(combined, retained...)
		base = s.Index - len(retained)
	}
	target := a.applied
	for _, e := range rec.Entries {
		if e.Index < a.applied {
			continue // below the snapshot: the crash outran a truncate marker
		}
		combined = append(combined, e)
		target++
	}
	if !st.HadSnapshot && len(combined) > 0 {
		base = combined[0].Index
	}
	if err := a.replay(rec.Entries, target); err != nil {
		return st, err
	}
	st.Replayed = target - st.SnapIndex
	st.Boundary = rec.Boundary
	if err := eng.Resume(rec.Boundary, base, combined); err != nil {
		return st, fmt.Errorf("sm: boot resume: %w", err)
	}
	return st, nil
}
