package sm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/kv"
	"repro/internal/log"
	"repro/internal/types"
)

// feed pushes n entries through the applier, batching `perInst` entries
// per instance (mimicking the log engine's OnCommit/OnApply cadence).
func feed(t *testing.T, a *Applier, start, n, perInst int, inst0 types.Instance) types.Instance {
	t.Helper()
	inst := inst0
	inBatch := 0
	for i := 0; i < n; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(start + i + 1),
			Key: fmt.Sprintf("k%d", (start+i)%7), Val: fmt.Sprintf("v%d", start+i)}
		a.OnCommit(log.Entry{Index: start + i, Instance: inst, Cmd: cmd.Encode()})
		if inBatch++; inBatch == perInst {
			a.OnApply(inst, inBatch)
			inst++
			inBatch = 0
		}
	}
	if inBatch > 0 {
		a.OnApply(inst, inBatch)
		inst++
	}
	return inst
}

func TestApplierSnapshotCadence(t *testing.T) {
	var snaps []Snapshot
	store := kv.NewStore()
	a, err := New(Config{
		Machine:       store,
		SnapshotEvery: 10,
		OnSnapshot:    func(s Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, 0, 35, 4, 0) // 9 instances, snapshot at instance boundaries ≥ 10 entries
	if a.Applied() != 35 {
		t.Fatalf("applied = %d", a.Applied())
	}
	// Boundaries fall at the first instance end crossing each multiple of
	// 10 applied entries: 12, 24, then the final short batch at 35.
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3 (%v)", len(snaps), snaps)
	}
	for i, want := range []int{12, 24, 35} {
		if snaps[i].Index != want {
			t.Errorf("snapshot %d at index %d, want %d", i, snaps[i].Index, want)
		}
	}
	for _, s := range snaps {
		idx, inst, _, err := DecodeSnapshot(s.Data)
		if err != nil {
			t.Fatal(err)
		}
		if idx != s.Index || inst != s.Instance {
			t.Errorf("header (%d,%v) != snapshot (%d,%v)", idx, inst, s.Index, s.Instance)
		}
	}
}

// TestSnapshotDigestsMatchAcrossReplicas: two appliers fed the same
// entries through different instance batching produce byte-identical
// machine state; snapshots at the same entry index have equal digests.
func TestSnapshotDigestsMatchAcrossReplicas(t *testing.T) {
	run := func(perInst, every int) (*Applier, []Snapshot) {
		var snaps []Snapshot
		a, err := New(Config{
			Machine:       kv.NewStore(),
			SnapshotEvery: every,
			OnSnapshot:    func(s Snapshot) { snaps = append(snaps, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, a, 0, 40, perInst, 0)
		return a, snaps
	}
	a1, s1 := run(4, 8)
	a2, s2 := run(4, 8)
	if a1.StateDigest() != a2.StateDigest() {
		t.Fatal("same input, different state digests")
	}
	if len(s1) != len(s2) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Digest != s2[i].Digest || s1[i].Index != s2[i].Index {
			t.Fatalf("snapshot %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestApplierPanicsOnGap(t *testing.T) {
	a, _ := New(Config{Machine: kv.NewStore()})
	defer func() {
		if recover() == nil {
			t.Fatal("index gap not detected")
		}
	}()
	a.OnCommit(log.Entry{Index: 3, Instance: 0, Cmd: kv.Command{Op: kv.OpPut, Key: "k"}.Encode()})
}

func TestRecoverFromSnapshotPlusSuffix(t *testing.T) {
	store := kv.NewStore()
	var retained []log.Entry
	a, err := New(Config{Machine: store, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Build the entry list alongside so we can hand Recover a suffix.
	inst := types.Instance(0)
	for i := 0; i < 30; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 2, Seq: uint64(i + 1),
			Key: fmt.Sprintf("k%d", i%5), Val: fmt.Sprintf("v%d", i)}
		e := log.Entry{Index: i, Instance: inst, Cmd: cmd.Encode()}
		retained = append(retained, e)
		a.OnCommit(e)
		if (i+1)%3 == 0 {
			a.OnApply(inst, 3)
			inst++
		}
	}
	want := a.StateDigest()
	snap, ok := a.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}

	// Corrupt the live state, then recover: snapshot + suffix must rebuild
	// the exact bytes. Only entries ≥ snapshot index are needed.
	store.Apply(kv.Command{Op: kv.OpPut, Client: 0, Key: "corruption", Val: "x"}.Encode())
	if a.StateDigest() == want {
		t.Fatal("corruption had no effect?")
	}
	if err := a.Recover(retained[snap.Index:]); err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() != want {
		t.Fatal("recovered state differs from pre-crash state")
	}
	if a.Applied() != 30 || a.Recoveries() != 1 {
		t.Fatalf("applied=%d recoveries=%d", a.Applied(), a.Recoveries())
	}
}

func TestRecoverWithoutSnapshotFullReplay(t *testing.T) {
	store := kv.NewStore()
	a, _ := New(Config{Machine: store}) // snapshots disabled
	var all []log.Entry
	for i := 0; i < 12; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i + 1), Key: "k", Val: fmt.Sprintf("%d", i)}
		e := log.Entry{Index: i, Instance: types.Instance(i), Cmd: cmd.Encode()}
		all = append(all, e)
		a.OnCommit(e)
		a.OnApply(types.Instance(i), 1)
	}
	want := a.StateDigest()
	store.Apply(kv.Command{Op: kv.OpDel, Client: 0, Key: "k"}.Encode())
	if err := a.Recover(all); err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() != want {
		t.Fatal("full replay diverged")
	}
}

func TestRecoverDetectsGapInRetained(t *testing.T) {
	a, _ := New(Config{Machine: kv.NewStore(), SnapshotEvery: 2})
	var all []log.Entry
	for i := 0; i < 8; i++ {
		e := log.Entry{Index: i, Instance: types.Instance(i),
			Cmd: kv.Command{Op: kv.OpPut, Key: "k", Val: "v"}.Encode()}
		all = append(all, e)
		a.OnCommit(e)
		a.OnApply(types.Instance(i), 1)
	}
	snap, _ := a.Latest()
	// Drop one mid-suffix entry: the replay must refuse, not skip.
	suffix := append([]log.Entry{}, all[snap.Index:]...)
	if len(suffix) > 2 {
		suffix = append(suffix[:1], suffix[2:]...)
		if err := a.Recover(suffix); err == nil {
			t.Fatal("gap in retained entries not detected")
		}
	}
}

// nondetMachine snapshots differently every time — Recover must refuse it.
type nondetMachine struct {
	kv.Store
	n int
}

func (m *nondetMachine) Snapshot() []byte {
	m.n++
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(m.n))
	return append(m.Store.Snapshot(), b[:]...)
}

func (m *nondetMachine) Restore(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("short")
	}
	return m.Store.Restore(b[:len(b)-8])
}

func TestRecoverDetectsNondeterminism(t *testing.T) {
	m := &nondetMachine{Store: *kv.NewStore()}
	a, _ := New(Config{Machine: m, SnapshotEvery: 1})
	e := log.Entry{Index: 0, Instance: 0, Cmd: kv.Command{Op: kv.OpPut, Key: "k", Val: "v"}.Encode()}
	a.OnCommit(e)
	a.OnApply(0, 1)
	if _, ok := a.Latest(); !ok {
		t.Fatal("no snapshot")
	}
	if err := a.Recover(nil); err == nil {
		t.Fatal("nondeterministic machine not detected")
	}
	// The failed recovery touched live state, so the applier is poisoned:
	// it must refuse further entries instead of silently forking.
	if a.Err() == nil {
		t.Fatal("failed recovery did not poison the applier")
	}
	before := a.Applied()
	a.OnCommit(log.Entry{Index: before, Instance: 1, Cmd: kv.Command{Op: kv.OpPut, Key: "k2", Val: "v"}.Encode()})
	if a.Applied() != before {
		t.Fatal("poisoned applier applied an entry")
	}
}

func TestSnapshotCodec(t *testing.T) {
	data := encodeSnapshot(42, 7, []byte("machine-bytes"))
	idx, inst, m, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 42 || inst != 7 || !bytes.Equal(m, []byte("machine-bytes")) {
		t.Fatalf("decode: %d %v %q", idx, inst, m)
	}
	for _, bad := range [][]byte{nil, {snapMagic}, []byte("XXXXXXXXXXXXXXXXXXXX")} {
		if _, _, _, err := DecodeSnapshot(bad); err == nil {
			t.Errorf("malformed snapshot %q accepted", bad)
		}
	}
}

// TestRefreshEveryIdleBoundary: with RefreshEvery set, an applier that
// stops receiving entries but keeps crossing instance boundaries (the
// idle cluster churning ⊥ no-ops) re-stamps its snapshot on a fixed
// instance cadence, keeping a fresh boundary on offer for transfer.
// Without it the boundary goes stale forever — the idle-rejoin gap.
func TestRefreshEveryIdleBoundary(t *testing.T) {
	run := func(refresh types.Instance) (*Applier, []Snapshot) {
		var snaps []Snapshot
		a, err := New(Config{
			Machine:       kv.NewStore(),
			SnapshotEvery: 10,
			RefreshEvery:  refresh,
			OnSnapshot:    func(s Snapshot) { snaps = append(snaps, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		// 3 entries land in instance 0 — below the entry cadence — then
		// the cluster idles: instances 1..19 apply zero entries each.
		next := feed(t, a, 0, 3, 3, 0)
		for i := next; i < 20; i++ {
			a.OnApply(i, 0)
		}
		return a, snaps
	}

	// Baseline: no refresh, no entry-cadence trigger ⇒ boundary never moves.
	if _, snaps := run(0); len(snaps) != 0 {
		t.Fatalf("refresh off: %d snapshots, want 0", len(snaps))
	}

	a1, s1 := run(5)
	// Refresh boundaries: first at instance 5 (no snapshot yet, i+1 ≥ 5),
	// then every 5 instances past the previous boundary: 10, 15, 20.
	wantInst := []types.Instance{5, 10, 15, 20}
	if len(s1) != len(wantInst) {
		t.Fatalf("refresh on: %d snapshots, want %d (%v)", len(s1), len(wantInst), s1)
	}
	for i, want := range wantInst {
		if s1[i].Instance != want {
			t.Errorf("snapshot %d at instance %v, want %v", i, s1[i].Instance, want)
		}
		if s1[i].Index != 3 {
			t.Errorf("snapshot %d at index %d, want 3 (idle refresh must not invent entries)", i, s1[i].Index)
		}
	}

	// Determinism: a second applier over the same applied sequence
	// re-stamps byte-identical snapshots at identical boundaries, so
	// transfer's t+1 corroboration accepts refreshed payloads.
	_, s2 := run(5)
	for i := range s1 {
		if s1[i].Digest != s2[i].Digest || s1[i].Instance != s2[i].Instance {
			t.Fatalf("refresh snapshot %d diverges across replicas: %+v vs %+v", i, s1[i], s2[i])
		}
	}

	// Entry cadence still wins once traffic resumes: 10 more entries in
	// one instance trip the SnapshotEvery path at the next boundary.
	feed(t, a1, 3, 10, 10, 20)
	last, ok := a1.Latest()
	if !ok || last.Index != 13 || last.Instance != 21 {
		t.Fatalf("entry-cadence snapshot after refresh = (%d,%v), want (13,21)", last.Index, last.Instance)
	}
}
