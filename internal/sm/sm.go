// Package sm is the state-machine-replication layer: it consumes the
// committed entries of a replicated log (internal/log) in total order and
// drives a deterministic application state machine, turning the ordering
// service into a replicated service.
//
// The Applier owns the snapshot/compaction lifecycle. Every SnapshotEvery
// applied entries it takes a snapshot at the next instance boundary: a
// deterministic, digest-stamped encoding of the machine state plus the
// apply position. Because applying is a pure function of the committed
// prefix and snapshot instants are a pure function of the apply position,
// every correct replica produces byte-identical snapshots at the same
// positions — the digests are the cross-replica correctness check.
//
// A snapshot makes everything before it disposable: the OnSnapshot hook is
// where the hosting runtime retires pre-snapshot per-instance state
// wholesale (log.Engine.Compact), which is what bounds memory on long
// runs. It also makes crash recovery local: Recover rebuilds the machine
// from the latest snapshot plus the log suffix the engine still retains,
// verifying on the way that re-encoding the restored state reproduces the
// snapshot digest (a cheap nondeterminism detector).
package sm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/log"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/types"
	"repro/internal/xtrace"
)

// Resetter is an optional Machine extension: zero the state in place.
// Machines that implement it can Recover even before any snapshot exists
// (full log replay from empty state).
type Resetter interface {
	Reset()
}

// Machine is a deterministic application state machine. All methods are
// called from the hosting runtime's single event loop.
//
// Determinism contract: Apply's response and state change, and Snapshot's
// bytes, must be pure functions of the machine state and inputs — no
// clocks, no randomness, no map-iteration-order dependence.
type Machine interface {
	// Apply executes one committed command and returns the response.
	Apply(cmd types.Value) types.Value
	// Snapshot encodes the full state deterministically.
	Snapshot() []byte
	// Restore replaces the full state from a Snapshot encoding. It must
	// be all-or-nothing: on any decode error the live state is left
	// untouched. Peer-snapshot installation (Applier.Install) relies on
	// this to reject Byzantine-supplied bytes without bricking the
	// replica (kv.Store.Restore decodes fully before swapping anything
	// in — see kv.ValidateSnapshot).
	Restore(data []byte) error
}

// Snapshot is one digest-stamped state capture.
type Snapshot struct {
	// Index: entries [0, Index) are reflected in the state.
	Index int
	// Instance: instances [0, Instance) are fully applied. Everything
	// below Instance is retirable.
	Instance types.Instance
	// Digest is SHA-256 over Data.
	Digest [32]byte
	// Data is the header-wrapped machine encoding (see Encode layout).
	Data []byte
}

// snapHeaderLen: magic byte + u64 index + u64 instance.
const snapHeaderLen = 1 + 8 + 8

const snapMagic = 'Z'

// encodeSnapshot wraps the machine bytes with the apply position.
func encodeSnapshot(index int, instance types.Instance, machine []byte) []byte {
	buf := make([]byte, snapHeaderLen, snapHeaderLen+len(machine))
	buf[0] = snapMagic
	binary.LittleEndian.PutUint64(buf[1:], uint64(index))
	binary.LittleEndian.PutUint64(buf[9:], uint64(instance))
	return append(buf, machine...)
}

// DecodeSnapshot splits a snapshot encoding into position and machine
// bytes.
func DecodeSnapshot(data []byte) (index int, instance types.Instance, machine []byte, err error) {
	if len(data) < snapHeaderLen || data[0] != snapMagic {
		return 0, 0, nil, fmt.Errorf("sm: not a snapshot (%d bytes)", len(data))
	}
	index = int(binary.LittleEndian.Uint64(data[1:]))
	instance = types.Instance(binary.LittleEndian.Uint64(data[9:]))
	if index < 0 || instance < 0 {
		return 0, 0, nil, fmt.Errorf("sm: negative snapshot position")
	}
	return index, instance, data[snapHeaderLen:], nil
}

// Config assembles an Applier.
type Config struct {
	// Machine is the application state machine (required).
	Machine Machine
	// SnapshotEvery takes a snapshot once at least this many entries
	// applied since the previous one, at the next instance boundary
	// (0 = snapshots disabled).
	SnapshotEvery int
	// RefreshEvery, when > 0, re-stamps the snapshot every RefreshEvery
	// applied INSTANCES even if no new entries arrived — the idle-rejoin
	// fix. A long-idle cluster churns ⊥ instances without entries, so an
	// entry-cadence snapshot boundary goes stale; a replica restarting
	// into that cluster installs the stale boundary, ends up more than
	// MaxLead instances behind, and its transfer requests are declined
	// ("snapshot not past the requester's boundary") forever. Refreshing
	// at no-op boundaries keeps a fresh boundary on offer. Determinism is
	// preserved because the refresh instant is a pure function of the
	// applied instance sequence and the refreshed state is a pure function
	// of the applied prefix — every correct replica re-stamps byte-
	// identical snapshots at identical boundaries, so the transfer layer's
	// t+1 corroboration still succeeds. 0 disables refresh — the default,
	// and what digest-pinned simulation schedules rely on: a refresh DOES
	// fire the OnSnapshot hook (and any compaction the host runs there),
	// so turning it on changes the event schedule.
	RefreshEvery types.Instance
	// OnSnapshot fires after each snapshot. The hosting runtime hooks
	// compaction here (log.Engine.Compact with its chosen lag).
	OnSnapshot func(s Snapshot)
	// OnResponse fires with the machine's response to every applied entry
	// (client reply path; nil = discard).
	OnResponse func(e log.Entry, resp types.Value)
	// Metrics, if non-nil, is the applier's telemetry bundle
	// (obs.NewSMMetrics). Passive pre-registered atomic cells; increments
	// never alter apply or snapshot behavior.
	Metrics *obs.SMMetrics
	// Tracer, if non-nil, records the apply stage of each committed
	// command (internal/xtrace). Passive.
	Tracer *xtrace.Tracer
	// Persist, if non-nil, is the durable storage backend
	// (store.Persister). The applier drives the write-ahead discipline
	// through it: every committed entry is appended BEFORE it is applied,
	// each applied instance boundary is marked (the fsync point), and
	// each snapshot is stamped as its full transfer payload — snapshot
	// plus retained dedup window (EncodeTransfer bytes) — after which the
	// store's entry prefix below the snapshot index is truncated. A
	// persist failure poisons the applier (the replica behaves as
	// crashed): continuing to apply entries the disk refused would make
	// the durable state lie about the served state. nil (the default)
	// keeps the historical fully-in-memory behavior, byte-identical.
	Persist store.Persister
	// RetainedEntries, if non-nil, returns the log engine's retained
	// committed-entry suffix (log.Engine.Entries). The applier copies it
	// right after each snapshot's OnSnapshot hook returns — i.e. after
	// the hook's compaction — so the copy is exactly the content-dedup
	// window every replica carries forward from that boundary. Snapshot
	// state TRANSFER needs it: installing machine state alone would leave
	// the receiving replica without the dedup entries its peers still
	// hold, and the next in-flight duplicate would commit on the receiver
	// but not on the peers, forking the entry streams. Hosts that serve
	// transfers (sm.Transfer) must wire it; snapshot-only hosts can leave
	// it nil.
	RetainedEntries func() []log.Entry
}

// Applier drives a Machine from a committed log. Wire OnCommit into
// log.Config.OnCommit and OnApply into log.Config.OnApply.
type Applier struct {
	cfg Config

	applied   int // entries applied
	sinceSnap int

	snap    Snapshot // latest
	hasSnap bool
	taken   int // snapshots taken (including discarded ones)
	// snapRetained is the retained entry suffix captured with snap (see
	// Config.RetainedEntries); it travels with the snapshot in transfers.
	snapRetained []log.Entry

	recoveries int
	installs   int   // peer snapshots installed via Install
	boots      int   // local durable snapshots restored via Boot
	poisoned   error // set when a failed Recover/Install left the state undefined
}

// New builds an Applier.
func New(cfg Config) (*Applier, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sm: nil Machine")
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("sm: negative SnapshotEvery %d", cfg.SnapshotEvery)
	}
	if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("sm: negative RefreshEvery %d", cfg.RefreshEvery)
	}
	return &Applier{cfg: cfg}, nil
}

// OnCommit applies one committed entry. Entries must arrive in log order
// (index-contiguous), which is exactly what log.Config.OnCommit delivers.
func (a *Applier) OnCommit(e log.Entry) {
	if a.poisoned != nil {
		// A failed Recover left machine state and apply position out of
		// sync; applying further entries would silently fork the replica.
		// The replica behaves as crashed from here on (see Err).
		return
	}
	if e.Index != a.applied {
		// A gap here is a hosting bug, not Byzantine input: the log engine
		// emits a contiguous index sequence. Applying out of order would
		// silently fork the replica, so refuse loudly.
		panic(fmt.Sprintf("sm: entry index %d applied at position %d", e.Index, a.applied))
	}
	if p := a.cfg.Persist; p != nil {
		// Write-ahead: the entry reaches the durable log before its effect
		// reaches the machine, so a crash can lose an unapplied append
		// (harmless — boot replays it) but never an applied one.
		if err := p.AppendEntry(e); err != nil {
			a.poison(fmt.Errorf("sm: persist append: %w", err))
			return
		}
	}
	resp := a.cfg.Machine.Apply(e.Cmd)
	a.cfg.Tracer.OnApplied(e.Cmd, e.Instance)
	a.applied++
	a.sinceSnap++
	if m := a.cfg.Metrics; m != nil {
		m.Applies.Inc()
	}
	if a.cfg.OnResponse != nil {
		a.cfg.OnResponse(e, resp)
	}
}

// OnApply marks instance i fully applied; all its entries have passed
// through OnCommit. Snapshots happen here — at instance boundaries — so a
// snapshot never splits an instance's batch and its covered-instance
// watermark is exact. With RefreshEvery set, a snapshot is also
// re-stamped after RefreshEvery instances without an entry-cadence
// snapshot, keeping the boundary fresh across idle (⊥-churning)
// stretches; see Config.RefreshEvery.
func (a *Applier) OnApply(i types.Instance, newly int) {
	if a.poisoned != nil {
		return
	}
	if p := a.cfg.Persist; p != nil {
		// Every applied instance is marked, entries or not: the mark is
		// where a durable restart resumes, and resuming below the cluster's
		// ⊥-churned frontier would strand the replica on instances whose
		// decisions nobody re-sends. MarkApplied is also the fsync point,
		// sealing the entries this instance appended.
		if err := p.MarkApplied(i + 1); err != nil {
			a.poison(fmt.Errorf("sm: persist mark: %w", err))
			return
		}
	}
	if a.cfg.SnapshotEvery > 0 && a.sinceSnap >= a.cfg.SnapshotEvery {
		a.takeSnapshot(i + 1)
		return
	}
	r := a.cfg.RefreshEvery
	if r <= 0 {
		return
	}
	if (a.hasSnap && i+1 >= a.snap.Instance+r) || (!a.hasSnap && i+1 >= r) {
		a.takeSnapshot(i + 1)
	}
}

// takeSnapshot captures the state covering instances [0, instance).
func (a *Applier) takeSnapshot(instance types.Instance) {
	data := encodeSnapshot(a.applied, instance, a.cfg.Machine.Snapshot())
	a.snap = Snapshot{
		Index:    a.applied,
		Instance: instance,
		Digest:   sha256.Sum256(data),
		Data:     data,
	}
	a.hasSnap = true
	a.taken++
	a.sinceSnap = 0
	if m := a.cfg.Metrics; m != nil {
		m.Snapshots.Inc()
		m.SnapshotBytes.Add(uint64(len(data)))
	}
	if a.cfg.OnSnapshot != nil {
		a.cfg.OnSnapshot(a.snap)
	}
	if a.cfg.RetainedEntries != nil {
		// After the hook: OnSnapshot is where hosts compact, and the
		// window that must travel with this snapshot is the one that
		// SURVIVES that compaction (it is what every replica's dedup
		// holds from this boundary on). Copied — the engine mutates its
		// slice as the log grows.
		a.snapRetained = append([]log.Entry(nil), a.cfg.RetainedEntries()...)
	}
	if p := a.cfg.Persist; p != nil {
		// The durable stamp is the full transfer payload — snapshot plus
		// the retained dedup window just captured — so boot can hand it
		// straight to DecodeTransfer and Install, the exact code path a
		// live peer-snapshot installation exercises. With the snapshot
		// durable, the store's entry prefix below it is dead weight.
		payload := EncodeTransfer(a.snap, a.snapRetained)
		if err := p.StampSnapshot(a.snap.Index, a.snap.Instance, []byte(payload)); err != nil {
			a.poison(fmt.Errorf("sm: persist snapshot: %w", err))
			return
		}
		if err := p.TruncatePrefix(a.snap.Index); err != nil {
			a.poison(fmt.Errorf("sm: persist truncate: %w", err))
			return
		}
	}
}

// Latest returns the most recent snapshot.
func (a *Applier) Latest() (Snapshot, bool) { return a.snap, a.hasSnap }

// LatestTransfer returns the most recent snapshot together with the
// retained entry suffix captured at its boundary (the transfer payload;
// see Config.RetainedEntries). Callers must not mutate the slice.
func (a *Applier) LatestTransfer() (Snapshot, []log.Entry, bool) {
	return a.snap, a.snapRetained, a.hasSnap
}

// Applied returns the number of entries applied.
func (a *Applier) Applied() int { return a.applied }

// Snapshots returns how many snapshots have been taken.
func (a *Applier) Snapshots() int { return a.taken }

// Recoveries returns how many times Recover ran.
func (a *Applier) Recoveries() int { return a.recoveries }

// StateDigest hashes the machine's current state (SHA-256 over its
// Snapshot encoding). Equal digests across replicas at equal applied
// counts certify byte-identical state.
func (a *Applier) StateDigest() [32]byte { return Digest(a.cfg.Machine) }

// Digest hashes a machine's current state (SHA-256 over its Snapshot
// encoding).
func Digest(m Machine) [32]byte { return sha256.Sum256(m.Snapshot()) }

// Recover models a crash-restart: it discards the live machine state,
// restores the latest snapshot, verifies the restored state re-encodes to
// the snapshot digest, and re-applies the retained log suffix (entries
// the engine still holds past the snapshot index). After Recover the
// machine is byte-identical to an uncrashed replica at the same applied
// count.
//
// retained is the engine's retained entry suffix (log.Engine.Entries());
// it must cover [snapshot.Index, applied), which compaction guarantees:
// the engine only trims entries below the snapshot floor it was given.
// Once the live state has been touched, any subsequent failure poisons
// the applier: machine state and apply position can no longer be trusted
// to agree, so OnCommit becomes a no-op (the replica behaves as crashed)
// and Err reports why. Failures detected before any mutation leave the
// applier fully usable.
func (a *Applier) Recover(retained []log.Entry) error {
	if a.poisoned != nil {
		return a.poisoned
	}
	target := a.applied
	if !a.hasSnap {
		// Crash before the first snapshot: recovery is a full replay from
		// an empty machine, possible only if the machine can zero itself
		// and the whole log is still retained. Snapshot-driven hosts
		// guarantee that (they only Compact below a snapshot); engines
		// running the pure-log AutoCompactLag mode do NOT, which is why
		// runner.RunKV rejects that combination up front.
		r, ok := a.cfg.Machine.(Resetter)
		if !ok {
			return fmt.Errorf("sm: no snapshot to recover from and machine cannot Reset")
		}
		r.Reset()
		a.applied, a.sinceSnap = 0, 0
		return a.replay(retained, target)
	}
	_, _, machine, err := DecodeSnapshot(a.snap.Data)
	if err != nil {
		return err
	}
	if err := a.cfg.Machine.Restore(machine); err != nil {
		return a.poison(fmt.Errorf("sm: restore: %w", err))
	}
	// Determinism check: the restored state must re-encode to the bytes we
	// snapshotted. A mismatch means the machine is nondeterministic (or
	// Restore is lossy) — exactly the bug class snapshots must not paper
	// over.
	redo := encodeSnapshot(a.snap.Index, a.snap.Instance, a.cfg.Machine.Snapshot())
	if sha256.Sum256(redo) != a.snap.Digest {
		return a.poison(fmt.Errorf("sm: restored state does not reproduce snapshot digest (nondeterministic machine?)"))
	}
	a.applied = a.snap.Index
	a.sinceSnap = 0
	return a.replay(retained, target)
}

// Install replaces the machine state with a peer's snapshot: the state-
// transfer path for a replica that can no longer catch up by replay
// (compaction retired the echo service it needed — see log.Config.MaxLead).
// Unlike Recover it moves FORWARD: s must cover strictly more entries
// than are currently applied, and no retained-suffix replay follows —
// the snapshot IS the new apply position.
//
// Validation is two-staged. Before any mutation: the header must decode,
// the stamped digest must match the data bytes, and the position must
// advance — failures leave the applier fully usable (the Machine.Restore
// contract requires rejecting bad encodings without mutating, so a
// garbage snapshot from a Byzantine peer cannot brick the replica).
// After Restore succeeds, the restored state must re-encode to the
// snapshot digest; a mismatch there means the machine restored
// something it cannot reproduce (nondeterminism or a lossy Restore), the
// live state is no longer trustworthy, and the applier poisons itself.
//
// retained is the entry suffix that traveled with the snapshot (the
// boundary's content-dedup window); the applier keeps it with the
// installed snapshot so this replica can serve onward transfers itself.
//
// The caller must realign the ordering layer in the same stroke
// (log.Engine.InstallSnapshot with s.Instance, s.Index and the same
// retained suffix) — sm.Transfer does both.
func (a *Applier) Install(s Snapshot, retained []log.Entry) error {
	return a.installSnapshot(s, retained, false)
}

// installSnapshot is Install's body; boot distinguishes a local durable
// restore (sm.Boot) from a genuine peer transfer in the counters —
// "zero peer installs after restart" is the durability layer's whole
// acceptance test, so a boot must not inflate the transfer tally.
func (a *Applier) installSnapshot(s Snapshot, retained []log.Entry, boot bool) error {
	if a.poisoned != nil {
		return a.poisoned
	}
	index, instance, machine, err := DecodeSnapshot(s.Data)
	if err != nil {
		return err
	}
	if index != s.Index || instance != s.Instance {
		return fmt.Errorf("sm: snapshot header (%d, %v) contradicts stamp (%d, %v)",
			index, instance, s.Index, s.Instance)
	}
	if sha256.Sum256(s.Data) != s.Digest {
		return fmt.Errorf("sm: snapshot data does not hash to its stamped digest")
	}
	// Strictly more entries always advances. Equal entries is the idle-
	// refresh shape (Config.RefreshEvery): same applied prefix, later
	// instance boundary — identical state, but adopting the stamp is what
	// lets a rejoiner realign its log with an idle cluster's frontier.
	if index < a.applied || (index == a.applied && a.hasSnap && instance <= a.snap.Instance) {
		return fmt.Errorf("sm: snapshot (%d entries, boundary %v) is not ahead of (%d, %v)",
			index, instance, a.applied, a.snap.Instance)
	}
	if err := a.cfg.Machine.Restore(machine); err != nil {
		return fmt.Errorf("sm: install restore: %w", err)
	}
	redo := encodeSnapshot(index, instance, a.cfg.Machine.Snapshot())
	if sha256.Sum256(redo) != s.Digest {
		return a.poison(fmt.Errorf("sm: installed state does not reproduce snapshot digest (nondeterministic machine?)"))
	}
	a.applied = index
	a.sinceSnap = 0
	a.snap = s
	a.snapRetained = retained
	a.hasSnap = true
	if boot {
		a.boots++
	} else {
		a.installs++
		if m := a.cfg.Metrics; m != nil {
			m.Installs.Inc()
		}
	}
	return nil
}

// Installs returns how many peer snapshots Install has applied.
func (a *Applier) Installs() int { return a.installs }

// Boots returns how many local durable snapshots Boot has restored.
func (a *Applier) Boots() int { return a.boots }

// Err returns the poisoning error of a failed Recover, if any. A
// poisoned applier ignores further entries (the replica is effectively
// crashed) — hosting runtimes should surface this.
func (a *Applier) Err() error { return a.poisoned }

func (a *Applier) poison(err error) error {
	a.poisoned = err
	return err
}

// replay re-applies retained entries from the current apply position up
// to target. The machine has already been reset/restored, so any failure
// here poisons the applier.
func (a *Applier) replay(retained []log.Entry, target int) error {
	for _, e := range retained {
		if e.Index < a.applied {
			continue
		}
		if e.Index != a.applied {
			return a.poison(fmt.Errorf("sm: retained entries have a gap at index %d (replay position %d)", e.Index, a.applied))
		}
		if e.Index >= target {
			break
		}
		a.cfg.Machine.Apply(e.Cmd)
		a.applied++
		a.sinceSnap++
	}
	if a.applied != target {
		return a.poison(fmt.Errorf("sm: replay stopped at %d of %d entries", a.applied, target))
	}
	a.recoveries++
	if m := a.cfg.Metrics; m != nil {
		m.Recoveries.Inc()
	}
	return nil
}
