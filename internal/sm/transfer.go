// Snapshot state transfer between replicas.
//
// Log compaction (log.Engine.Compact) bounds memory by retiring
// pre-snapshot instance state — including the reliable-broadcast echo
// service that lagging replicas relied on to catch up. A replica that
// falls more than MaxLead instances behind the cluster therefore reaches
// a state where replay is impossible by construction: the messages it
// needs were dropped by its own MaxLead guard and will never be resent,
// and the peers that could re-serve them have compacted the instances
// away. Transfer closes that gap the way self-stabilizing protocols do —
// by converging from a peer's CURRENT state instead of its history.
//
// The protocol is a request, a form-tagged response, and — for payloads
// too large for one frame — a chunk stream (module proto.ModSnap):
//
//	SNAP_REQ   — broadcast by a lagging replica; Instance carries the
//	             requester's applied boundary so peers with nothing newer
//	             can decline silently.
//	SNAP_RESP  — form 0 (inline): one digest-stamped transfer payload in
//	             a single frame (EncodeTransfer), sent point-to-point.
//	             Form 1 (manifest): the payload's position, length and
//	             per-chunk SHA-256 list (EncodeManifest) — served when
//	             the payload exceeds TransferInlineMax, which a single
//	             wire frame could not carry (wire codec v5).
//	SNAP_ACK   — requester → server: the next chunk range wanted of a
//	             corroborated manifest's payload. Re-sent (by the retry
//	             timer) for whatever range is still missing, which is how
//	             a download survives chunk loss; the server answering is
//	             rotated across corroborating peers, which is how it
//	             survives a withholding server.
//	SNAP_CHUNK — server → requester: one chunk, checked on arrival
//	             against the manifest's pinned hash.
//
// Trust model: a snapshot is installed only when (a) its bytes hash to
// the stamped digest, (b) t+1 DISTINCT peers served byte-identical
// copies — of the payload itself on the inline path, of the MANIFEST on
// the chunked path (the manifest is a pure function of the payload, so
// t+1 matching manifests pin every chunk hash before a single chunk is
// fetched) — and (c) the restored state re-encodes to the digest
// (Applier.Install). Because at most t peers are Byzantine, t+1 matching
// copies always include one from a correct replica, and correct replicas
// only serve what their own deterministic apply produced — so an
// installed snapshot is a genuine cluster state. Responses and chunks
// that fail validation are dropped; forgeries can therefore waste
// bandwidth but never state. Serving is rate-limited per requester, and
// one 40-byte ack yields at most TransferChunkWindow chunk frames, so
// neither request nor ack spam amplifies unboundedly.
package sm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/log"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/types"
)

// transferDigestLen prefixes every SNAP_RESP payload.
const transferDigestLen = 32

// maxTransferEntries bounds the retained-suffix count in a transfer
// payload (Byzantine defense: a forged count must not force unbounded
// allocation; real windows are CompactKeep-sized).
const maxTransferEntries = 1 << 20

// maxCandidates bounds the corroboration table. Unmatched payloads hold
// full snapshot bytes, and a Byzantine peer can mint unlimited DISTINCT
// well-formed payloads (the digest is unsigned), so the table must not
// grow with attacker effort. On overflow the table is cleared wholesale:
// correct peers re-serve on the next retry, so an attacker must win the
// refill race on every round forever to starve a fetch — and can never
// corrupt one (installs still need t+1 matching senders).
const maxCandidates = 32

// EncodeTransfer wraps a snapshot and the retained entry suffix captured
// at its boundary into one self-validating wire payload:
//
//	SHA-256 over everything after it (the corroboration digest)
//	u32 snapshot length ‖ snapshot bytes (sm encodeSnapshot layout)
//	u32 entry count, then per entry: u64 index ‖ u64 instance ‖
//	u32 command length ‖ command bytes
//
// The retained suffix travels because it IS log state: it is the
// content-dedup window every replica carries forward from the boundary,
// and a receiver without it would commit the next in-flight duplicate
// its peers skip. Both parts are pure functions of the committed prefix,
// so every correct replica produces byte-identical payloads for the same
// boundary — which is what lets the requester corroborate them by
// digest across t+1 senders.
func EncodeTransfer(s Snapshot, retained []log.Entry) types.Value {
	size := transferDigestLen + 4 + len(s.Data) + 4
	for _, e := range retained {
		size += 20 + len(e.Cmd)
	}
	buf := make([]byte, transferDigestLen, size)
	var u [8]byte
	binary.LittleEndian.PutUint32(u[:4], uint32(len(s.Data)))
	buf = append(buf, u[:4]...)
	buf = append(buf, s.Data...)
	binary.LittleEndian.PutUint32(u[:4], uint32(len(retained)))
	buf = append(buf, u[:4]...)
	for _, e := range retained {
		binary.LittleEndian.PutUint64(u[:], uint64(e.Index))
		buf = append(buf, u[:]...)
		binary.LittleEndian.PutUint64(u[:], uint64(e.Instance))
		buf = append(buf, u[:]...)
		binary.LittleEndian.PutUint32(u[:4], uint32(len(e.Cmd)))
		buf = append(buf, u[:4]...)
		buf = append(buf, e.Cmd...)
	}
	digest := sha256.Sum256(buf[transferDigestLen:])
	copy(buf[:transferDigestLen], digest[:])
	return types.Value(buf)
}

// DecodeTransfer parses and validates a SNAP_RESP payload: the body must
// hash to the carried digest, the snapshot header must decode, and the
// entry list must be well-formed. The bytes may come from a Byzantine
// peer, so every failure is a normal error, never a panic. The returned
// digest is the payload digest (over snapshot AND entries) — the
// corroboration key; the Snapshot's own Digest field is recomputed from
// its bytes.
func DecodeTransfer(v types.Value) (s Snapshot, retained []log.Entry, payload [32]byte, err error) {
	b := []byte(v)
	if len(b) < transferDigestLen+8+snapHeaderLen {
		return s, nil, payload, fmt.Errorf("sm: transfer frame of %d bytes is too short", len(b))
	}
	copy(payload[:], b[:transferDigestLen])
	body := b[transferDigestLen:]
	if sha256.Sum256(body) != payload {
		return s, nil, payload, fmt.Errorf("sm: transfer body does not hash to its digest")
	}
	snapLen := binary.LittleEndian.Uint32(body)
	rest := body[4:]
	if uint64(snapLen) > uint64(len(rest)) {
		return s, nil, payload, fmt.Errorf("sm: snapshot length %d exceeds payload", snapLen)
	}
	s.Data = rest[:snapLen]
	rest = rest[snapLen:]
	s.Digest = sha256.Sum256(s.Data)
	if s.Index, s.Instance, _, err = DecodeSnapshot(s.Data); err != nil {
		return s, nil, payload, err
	}
	if len(rest) < 4 {
		return s, nil, payload, fmt.Errorf("sm: truncated entry count")
	}
	count := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if count > maxTransferEntries || uint64(count)*20 > uint64(len(rest)) {
		return s, nil, payload, fmt.Errorf("sm: entry count %d exceeds payload", count)
	}
	retained = make([]log.Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 20 {
			return s, nil, payload, fmt.Errorf("sm: truncated entry %d", i)
		}
		idx := binary.LittleEndian.Uint64(rest)
		inst := binary.LittleEndian.Uint64(rest[8:])
		cmdLen := binary.LittleEndian.Uint32(rest[16:])
		rest = rest[20:]
		if uint64(cmdLen) > uint64(len(rest)) {
			return s, nil, payload, fmt.Errorf("sm: entry %d command length %d exceeds payload", i, cmdLen)
		}
		if idx > 1<<62 || inst > 1<<62 {
			return s, nil, payload, fmt.Errorf("sm: entry %d position out of range", i)
		}
		retained = append(retained, log.Entry{
			Index:    int(idx),
			Instance: types.Instance(inst),
			Cmd:      types.Value(rest[:cmdLen]),
		})
		rest = rest[cmdLen:]
	}
	if len(rest) != 0 {
		return s, nil, payload, fmt.Errorf("sm: %d trailing bytes after transfer payload", len(rest))
	}
	return s, retained, payload, nil
}

// LogControl is the slice of the replicated-log engine Transfer drives:
// reading the apply/commit position, noticing the engine has closed, and
// realigning it when a snapshot installs. log.Engine implements it.
type LogControl interface {
	// Applied returns the number of applied instances.
	Applied() types.Instance
	// Committed returns the number of committed commands (trimmed
	// included).
	Committed() int
	// Closed reports whether the engine stopped starting new instances.
	Closed() bool
	// InstallSnapshot jumps the engine to a peer snapshot's boundary,
	// seeding its retained entries and content dedup from the transfer's
	// retained suffix.
	InstallSnapshot(boundary types.Instance, index int, retained []log.Entry) error
}

// TransferConfig assembles a Transfer.
type TransferConfig struct {
	// Env is the process environment (required).
	Env proto.Env
	// Applier is this replica's state-machine layer (required); it serves
	// its latest snapshot and installs fetched ones.
	Applier *Applier
	// Log is this replica's log engine (required).
	Log LogControl
	// Next receives every non-transfer message (required; normally the
	// log engine itself).
	Next proto.Handler
	// RetryEvery re-broadcasts the fetch request while a fetch is in
	// flight (default 25ms): responses can be lost, and peers at
	// different positions serve different snapshots until t+1 align.
	RetryEvery types.Duration
	// StallProbe is the cadence of the stall detector (default 50ms): if
	// the engine is open but the apply position has not advanced since
	// the previous probe, a fetch request goes out even without inbound
	// MaxLead pressure — the cluster may have finished and gone quiet,
	// leaving no message stream to trigger on. 0 keeps the default; < 0
	// disables probing (pressure-only triggering).
	StallProbe types.Duration
	// ServeEvery rate-limits responses per requester (default
	// RetryEvery/2): request spam must not amplify into snapshot floods.
	ServeEvery types.Duration
	// OnInstall, if non-nil, fires after each successful install.
	OnInstall func(s Snapshot)
	// Metrics, if non-nil, is the transfer telemetry bundle
	// (obs.NewTransferMetrics). Passive; never alters protocol behavior.
	Metrics *obs.TransferMetrics
}

// Transfer implements peer-to-peer snapshot state transfer for one
// replica. It wraps the replica's message path (proto.Handler): transfer
// frames are consumed, everything else forwards to Next. Like the rest
// of the stack it is single-threaded — all calls must come from the
// hosting runtime's event loop.
type Transfer struct {
	cfg TransferConfig

	fetching    bool
	fetchFrom   types.Instance // applied position when the fetch started
	cancelRetry func()
	// candidates accumulates inline responses of the current and past
	// fetch rounds keyed by digest; senders is the corroboration set.
	// Entries for boundaries we have meanwhile passed are filtered at
	// install time, not eagerly.
	candidates map[[32]byte]*candidate
	// manifests is the chunked path's corroboration table, keyed by the
	// hash of the manifest ENCODING; same overflow defense as candidates.
	manifests map[[32]byte]*manifestCandidate
	// dl is the in-flight chunk download, nil when none.
	dl *download
	// chunkCache memoizes the chunk-serving state of the current
	// snapshot so acks do not re-encode the payload per window.
	chunkCache *serveChunks
	lastServed map[types.ProcID]types.Time
	lastAcked  map[types.ProcID]types.Time
	lastProbe  types.Instance // applied position at the previous probe

	requests  int
	served    int
	installs  int
	rejected  int
	chServed  int
	chRecv    int
	chRejects int
}

// candidate is one inline payload digest's corroboration state.
type candidate struct {
	snap     Snapshot
	retained []log.Entry
	senders  map[types.ProcID]struct{}
}

// manifestCandidate is one manifest encoding's corroboration state.
// order records first-arrival order — the deterministic rotation list a
// download pulls servers from.
type manifestCandidate struct {
	key     [32]byte
	mf      Manifest
	senders map[types.ProcID]struct{}
	order   []types.ProcID
}

// download is the state of one in-flight chunked fetch.
type download struct {
	mf        Manifest
	key       [32]byte
	servers   []types.ProcID // corroborators, first-arrival order
	serverIdx int            // rotated when the retry timer finds no progress
	chunks    [][]byte
	have      int
	scan      int // firstMissing's monotone scan pointer
	ackedEnd  int // end of the last requested range
	lastHave  int // have at the previous retry firing
	stalls    int // consecutive retry firings with no new chunk
}

// firstMissing returns the lowest un-received chunk index, -1 when the
// download is complete.
func (d *download) firstMissing() int {
	for d.scan < len(d.chunks) && d.chunks[d.scan] != nil {
		d.scan++
	}
	if d.scan == len(d.chunks) {
		return -1
	}
	return d.scan
}

// serveChunks is the serve-side cache of the current snapshot's chunked
// form.
type serveChunks struct {
	snapDigest [32]byte // which snapshot this cache was built from
	payload    []byte
	manifest   types.Value // form-tagged SNAP_RESP value
	digest     [32]byte    // payload digest (the key acks carry)
	count      int
	instance   types.Instance
}

var _ proto.Handler = (*Transfer)(nil)

// NewTransfer wires a Transfer and arms its stall probe.
func NewTransfer(cfg TransferConfig) (*Transfer, error) {
	if cfg.Env == nil || cfg.Applier == nil || cfg.Log == nil || cfg.Next == nil {
		return nil, fmt.Errorf("sm: transfer needs Env, Applier, Log and Next")
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 25 * time.Millisecond
	}
	if cfg.StallProbe == 0 {
		cfg.StallProbe = 50 * time.Millisecond
	}
	if cfg.ServeEvery <= 0 {
		cfg.ServeEvery = cfg.RetryEvery / 2
	}
	t := &Transfer{
		cfg:        cfg,
		candidates: make(map[[32]byte]*candidate),
		manifests:  make(map[[32]byte]*manifestCandidate),
		lastServed: make(map[types.ProcID]types.Time),
		lastAcked:  make(map[types.ProcID]types.Time),
	}
	if cfg.StallProbe > 0 {
		cfg.Env.SetTimer(cfg.StallProbe, t.probe)
	}
	return t, nil
}

// OnMessage implements proto.Handler: transfer frames are handled here,
// everything else forwards to the wrapped handler.
func (t *Transfer) OnMessage(from types.ProcID, m proto.Message) {
	switch m.Kind {
	case proto.MsgSnapRequest:
		t.serve(from, m.Instance)
	case proto.MsgSnapResponse:
		t.consider(from, m)
	case proto.MsgSnapAck:
		t.onAck(from, m)
	case proto.MsgSnapChunk:
		t.onChunk(from, m)
	default:
		t.cfg.Next.OnMessage(from, m)
	}
}

// OnDroppedAhead converts MaxLead drop pressure into a fetch trigger;
// wire it to log.Config.OnDroppedAhead. The engine only fires it for
// instances past applied+MaxLead, i.e. exactly when the cluster has
// outrun what replay can recover.
func (t *Transfer) OnDroppedAhead(i types.Instance) {
	t.startFetch()
}

// startFetch begins a fetch round unless one is already in flight.
func (t *Transfer) startFetch() {
	if t.fetching || t.cfg.Log.Closed() {
		return
	}
	t.fetching = true
	t.fetchFrom = t.cfg.Log.Applied()
	t.request()
	t.armRetry()
}

// request broadcasts one SNAP_REQ carrying our applied boundary.
func (t *Transfer) request() {
	t.requests++
	if m := t.cfg.Metrics; m != nil {
		m.Requests.Inc()
	}
	env := t.cfg.Env
	if trace.Recording(env.Trace()) {
		env.Trace().Emit(trace.Event{
			At: env.Now(), Kind: trace.KindSnapRequest, Proc: env.ID(),
			Aux: fmt.Sprintf("applied=%v", t.cfg.Log.Applied()),
		})
	}
	env.Broadcast(proto.Message{
		Kind:     proto.MsgSnapRequest,
		Tag:      proto.Tag{Mod: proto.ModSnap},
		Instance: t.cfg.Log.Applied(),
	})
}

// armRetry schedules the next re-request of the in-flight fetch. The
// retry loop ends on install (stopFetch), on engine close, or when the
// apply position moves past the fetch's starting point on its own —
// progress means replay is working after all, and renewed pressure (or a
// renewed stall) simply starts a fresh fetch.
//
// With a chunk download in flight the retry re-acks the first missing
// range instead of re-broadcasting the request — that is the loss
// recovery path — and rotates to the next corroborating server first,
// so a server that withholds chunks (crashed or Byzantine) delays the
// download by one retry period, not forever. A download that makes NO
// progress for TransferStallLimit consecutive firings is presumed
// stale (the serve side drops acks for superseded payloads silently;
// see the constant's comment) and abandoned: its manifest candidate is
// dropped so only t+1 fresh senders can revive that exact payload, and
// a fresh SNAP_REQ re-corroborates whatever the cluster serves now.
func (t *Transfer) armRetry() {
	t.cancelRetry = t.cfg.Env.SetTimer(t.cfg.RetryEvery, func() {
		if !t.fetching || t.cfg.Log.Closed() || t.cfg.Log.Applied() > t.fetchFrom {
			t.fetching = false
			t.dl = nil
			return
		}
		if d := t.dl; d != nil {
			if d.have == d.lastHave {
				d.stalls++
			} else {
				d.lastHave, d.stalls = d.have, 0
			}
			if d.stalls >= TransferStallLimit {
				delete(t.manifests, d.key)
				t.dl = nil
				t.request()
			} else {
				d.serverIdx = (d.serverIdx + 1) % len(d.servers)
				t.requestChunks()
			}
		} else {
			t.request()
		}
		t.armRetry()
	})
}

// probe is the stall detector: when the engine is open but the apply
// position froze between two probes, ask the cluster for a snapshot even
// without inbound pressure. This covers the end-game where the peers
// have finished (and gone quiet) while we still hold an unreachable gap:
// their FINAL snapshot is the convergence point, and nobody is sending
// the messages that would otherwise trigger a fetch. The probe re-arms
// until the engine closes, so an open laggard keeps pulling.
func (t *Transfer) probe() {
	if t.cfg.Log.Closed() {
		return // converged (or shut down): let the world drain
	}
	applied := t.cfg.Log.Applied()
	if applied == t.lastProbe && !t.fetching {
		t.startFetch()
	}
	t.lastProbe = applied
	t.cfg.Env.SetTimer(t.cfg.StallProbe, t.probe)
}

// serve answers one SNAP_REQ: send our latest snapshot (with its
// retained suffix) iff it is ahead of the requester's boundary, at most
// once per ServeEvery per requester.
//
// A long-idle cluster is the degenerate case here: ⊥ instances carry no
// entries, so the entry-cadence snapshot boundary freezes while applied
// instances run ahead, and a rejoining replica that already holds that
// stale boundary would be declined by everyone forever. The fix lives at
// snapshot-TAKING time, not here: sm.Config.RefreshEvery re-stamps the
// snapshot at deterministic instance boundaries, so serve always has a
// fresh boundary to offer while remaining byte-identical across correct
// replicas (serving a locally re-stamped snapshot from THIS point would
// break the t+1 corroboration — peers at different positions would offer
// different bytes).
func (t *Transfer) serve(from types.ProcID, reqBoundary types.Instance) {
	snap, retained, ok := t.cfg.Applier.LatestTransfer()
	if !ok || snap.Instance <= reqBoundary {
		return // nothing the requester doesn't already have
	}
	env := t.cfg.Env
	now := env.Now()
	if last, ok := t.lastServed[from]; ok && now-last < types.Time(t.cfg.ServeEvery) {
		return
	}
	t.lastServed[from] = now
	t.served++
	if m := t.cfg.Metrics; m != nil {
		m.Served.Inc()
	}
	if trace.Recording(env.Trace()) {
		env.Trace().Emit(trace.Event{
			At: now, Kind: trace.KindSnapServe, Proc: env.ID(), Peer: from,
			Aux: fmt.Sprintf("idx=%d inst=%v digest=%x", snap.Index, snap.Instance, snap.Digest[:8]),
		})
	}
	payload := []byte(EncodeTransfer(snap, retained))
	var val types.Value
	if len(payload) <= TransferInlineMax {
		// Small state: the historical single frame, form-tagged.
		val = InlineTransfer(types.Value(payload))
	} else {
		sc := t.serveChunksFor(snap, payload)
		if sc == nil {
			return // beyond even the chunked bound; nothing to offer
		}
		val = sc.manifest
	}
	env.Send(from, proto.Message{
		Kind:     proto.MsgSnapResponse,
		Tag:      proto.Tag{Mod: proto.ModSnap},
		Instance: snap.Instance,
		Val:      val,
	})
}

// InlineTransfer form-tags a complete transfer payload as a SNAP_RESP
// value (the small-state form the serve path sends; exported for tests
// and tooling that fabricate responses).
func InlineTransfer(payload types.Value) types.Value {
	buf := make([]byte, 1+len(payload))
	buf[0] = TransferFormInline
	copy(buf[1:], []byte(payload))
	return types.Value(buf)
}

// serveChunksFor returns (building and caching if needed) the chunk
// serving state of the given snapshot; nil if the payload cannot be
// chunked (past MaxManifestChunks).
func (t *Transfer) serveChunksFor(snap Snapshot, payload []byte) *serveChunks {
	if sc := t.chunkCache; sc != nil && sc.snapDigest == snap.Digest {
		return sc
	}
	mf, err := BuildManifest(snap.Index, snap.Instance, payload)
	if err != nil {
		return nil
	}
	body := EncodeManifest(mf)
	buf := make([]byte, 1+len(body))
	buf[0] = TransferFormManifest
	copy(buf[1:], body)
	t.chunkCache = &serveChunks{
		snapDigest: snap.Digest,
		payload:    payload,
		manifest:   types.Value(buf),
		digest:     mf.Payload,
		count:      mf.ChunkCount(),
		instance:   snap.Instance,
	}
	return t.chunkCache
}

// onAck serves one requested chunk range of the current snapshot's
// payload. A digest naming anything else is stale (the snapshot moved
// on) and is ignored without offense; the range is clamped, and acks are
// rate-limited per requester — one ack can yield at most
// TransferChunkWindow chunk frames, so the amplification is bounded
// both per message and per time.
func (t *Transfer) onAck(from types.ProcID, m proto.Message) {
	digest, f, w, err := DecodeAck(m.Val)
	if err != nil {
		t.rejectChunk()
		return
	}
	snap, retained, ok := t.cfg.Applier.LatestTransfer()
	if !ok {
		return
	}
	sc := t.chunkCache
	if sc == nil || sc.snapDigest != snap.Digest {
		payload := []byte(EncodeTransfer(snap, retained))
		if len(payload) <= TransferInlineMax {
			return // current snapshot is inline-sized; no chunks to serve
		}
		if sc = t.serveChunksFor(snap, payload); sc == nil {
			return
		}
	}
	if digest != sc.digest {
		return // stale ack for a superseded snapshot
	}
	env := t.cfg.Env
	now := env.Now()
	ackEvery := t.cfg.ServeEvery / 4
	if last, ok := t.lastAcked[from]; ok && now-last < types.Time(ackEvery) {
		return
	}
	t.lastAcked[from] = now
	end := f + w
	if end > sc.count {
		end = sc.count
	}
	for i := f; i < end; i++ {
		lo := i * TransferChunkSize
		hi := lo + TransferChunkSize
		if hi > len(sc.payload) {
			hi = len(sc.payload)
		}
		env.Send(from, proto.Message{
			Kind:     proto.MsgSnapChunk,
			Tag:      proto.Tag{Mod: proto.ModSnap},
			Instance: sc.instance,
			Val:      EncodeChunk(sc.digest, i, sc.payload[lo:hi]),
		})
		t.chServed++
		if mm := t.cfg.Metrics; mm != nil {
			mm.ChunksServed.Inc()
		}
	}
}

// consider dispatches one SNAP_RESP on its form tag: inline payloads
// corroborate and install directly, manifests corroborate and then
// start a chunk download.
func (t *Transfer) consider(from types.ProcID, m proto.Message) {
	b := []byte(m.Val)
	if len(b) == 0 {
		t.reject()
		return
	}
	switch b[0] {
	case TransferFormInline:
		t.considerInline(from, types.Value(b[1:]), m.Instance)
	case TransferFormManifest:
		t.considerManifest(from, b[1:], m.Instance)
	default:
		t.reject()
	}
}

// considerInline validates one inline payload and installs once t+1
// distinct peers corroborate the same payload digest (snapshot AND
// retained suffix).
func (t *Transfer) considerInline(from types.ProcID, v types.Value, inst types.Instance) {
	s, retained, payload, err := DecodeTransfer(v)
	if err != nil || s.Instance != inst {
		t.reject()
		return
	}
	// Stale iff it advances neither position. An equal entry index with a
	// later boundary is NOT stale: that is an idle cluster's refreshed
	// snapshot (sm.Config.RefreshEvery), and adopting it is exactly how a
	// rejoiner escapes the idle-rejoin gap. s.Instance > Log.Applied()
	// implies it is also past our own snapshot boundary (a boundary never
	// exceeds the applied frontier), so Install's equality guard holds.
	if s.Instance <= t.cfg.Log.Applied() || s.Index < t.cfg.Applier.Applied() {
		return // stale by the time it arrived; not an offense
	}
	c := t.candidates[payload]
	if c == nil {
		if len(t.candidates) >= maxCandidates {
			t.candidates = make(map[[32]byte]*candidate)
			t.reject()
		}
		c = &candidate{snap: s, retained: retained, senders: make(map[types.ProcID]struct{})}
		t.candidates[payload] = c
	}
	c.senders[from] = struct{}{}
	if len(c.senders) < t.cfg.Env.Params().T+1 {
		return
	}
	t.install(c.snap, c.retained)
}

// considerManifest corroborates one manifest and, at t+1 matching
// senders, starts (or joins) the chunk download. The corroboration key
// is the hash of the manifest ENCODING, so any disagreement — position,
// length, a single chunk hash — forks the candidate.
func (t *Transfer) considerManifest(from types.ProcID, body []byte, inst types.Instance) {
	mf, err := DecodeManifest(body)
	if err != nil || mf.Instance != inst {
		t.reject()
		return
	}
	if mf.Instance <= t.cfg.Log.Applied() || mf.Index < t.cfg.Applier.Applied() {
		return // stale by the time it arrived; not an offense
	}
	key := sha256.Sum256(body)
	c := t.manifests[key]
	if c == nil {
		if len(t.manifests) >= maxCandidates {
			t.manifests = make(map[[32]byte]*manifestCandidate)
			t.reject()
		}
		c = &manifestCandidate{key: key, mf: mf, senders: make(map[types.ProcID]struct{})}
		t.manifests[key] = c
	}
	if _, dup := c.senders[from]; !dup {
		c.senders[from] = struct{}{}
		c.order = append(c.order, from)
	}
	if len(c.senders) < t.cfg.Env.Params().T+1 {
		return
	}
	t.startDownload(c)
}

// startDownload begins fetching a corroborated manifest's chunks, or
// adds new corroborators to the in-flight download. A corroborated
// manifest for a LATER boundary replaces an in-flight download — the
// cluster moved on and the old payload would be stale on arrival.
func (t *Transfer) startDownload(c *manifestCandidate) {
	if d := t.dl; d != nil {
		if d.key == c.key {
			d.servers = append([]types.ProcID(nil), c.order...)
			return
		}
		if d.mf.Instance >= c.mf.Instance {
			return
		}
	}
	t.dl = &download{
		mf:      c.mf,
		key:     c.key,
		servers: append([]types.ProcID(nil), c.order...),
		chunks:  make([][]byte, c.mf.ChunkCount()),
	}
	t.requestChunks()
}

// requestChunks acks the next missing range to the download's current
// server. The window is fixed; the server clamps the end.
func (t *Transfer) requestChunks() {
	d := t.dl
	if d == nil {
		return
	}
	f := d.firstMissing()
	if f < 0 {
		return
	}
	d.ackedEnd = f + TransferChunkWindow
	t.cfg.Env.Send(d.servers[d.serverIdx], proto.Message{
		Kind:     proto.MsgSnapAck,
		Tag:      proto.Tag{Mod: proto.ModSnap},
		Instance: d.mf.Instance,
		Val:      EncodeAck(d.mf.Payload, f, TransferChunkWindow),
	})
}

// onChunk stores one chunk of the in-flight download. Chunks for no (or
// a superseded) download are stale, not offenses; a chunk whose length
// or hash contradicts the corroborated manifest is a forgery and is
// counted. When the window completes the next range is acked; when the
// payload completes it is assembled and installed.
func (t *Transfer) onChunk(from types.ProcID, m proto.Message) {
	digest, idx, data, err := DecodeChunk(m.Val)
	if err != nil {
		t.rejectChunk()
		return
	}
	d := t.dl
	if d == nil || digest != d.mf.Payload {
		return // stale (download done or replaced)
	}
	if idx >= d.mf.ChunkCount() || len(data) != d.mf.ChunkLen(idx) ||
		sha256.Sum256(data) != d.mf.Hashes[idx] {
		t.rejectChunk()
		return
	}
	if d.chunks[idx] != nil {
		return // duplicate delivery (re-requested range overlap)
	}
	d.chunks[idx] = append([]byte(nil), data...)
	d.have++
	t.chRecv++
	if mm := t.cfg.Metrics; mm != nil {
		mm.ChunksReceived.Inc()
	}
	if d.have == d.mf.ChunkCount() {
		t.assemble(d)
		return
	}
	if f := d.firstMissing(); f >= d.ackedEnd {
		t.requestChunks()
	}
}

// assemble concatenates a complete download, re-validates it end to end
// (payload digest, decode, position against the manifest), and installs.
// The t+1-corroborated manifest pinned every chunk hash, so a failure
// past this point means corroboration itself was subverted — count it
// and drop, never install.
func (t *Transfer) assemble(d *download) {
	t.dl = nil
	payload := make([]byte, 0, d.mf.TotalLen)
	for _, c := range d.chunks {
		payload = append(payload, c...)
	}
	if sha256.Sum256(payload) != d.mf.Payload {
		t.reject()
		return
	}
	s, retained, _, err := DecodeTransfer(types.Value(payload))
	if err != nil || s.Index != d.mf.Index || s.Instance != d.mf.Instance {
		t.reject()
		return
	}
	if s.Instance <= t.cfg.Log.Applied() || s.Index < t.cfg.Applier.Applied() {
		return // overtaken while downloading; not an offense
	}
	t.install(s, retained)
}

// rejectChunk counts one discarded chunk-protocol frame.
func (t *Transfer) rejectChunk() {
	t.chRejects++
	if mm := t.cfg.Metrics; mm != nil {
		mm.ChunkRejected.Inc()
	}
}

// install commits to a corroborated snapshot: state machine first
// (Applier.Install re-checks the digest end to end), then the ordering
// layer (LogControl.InstallSnapshot). The preconditions were checked in
// consider and Install re-validates, so a failure here means the machine
// itself misbehaved — the applier poisons itself and the hosting runtime
// surfaces it; the fetch stops either way.
func (t *Transfer) install(s Snapshot, retained []log.Entry) {
	if err := t.cfg.Applier.Install(s, retained); err != nil {
		t.reject()
		t.stopFetch()
		return
	}
	if err := t.cfg.Log.InstallSnapshot(s.Instance, s.Index, retained); err != nil {
		// Unreachable when Applier and Log were aligned (consider checked
		// both positions); count it rather than hide it.
		t.reject()
		t.stopFetch()
		return
	}
	t.installs++
	if m := t.cfg.Metrics; m != nil {
		m.Installs.Inc()
	}
	env := t.cfg.Env
	if trace.Recording(env.Trace()) {
		env.Trace().Emit(trace.Event{
			At: env.Now(), Kind: trace.KindSnapInstall, Proc: env.ID(),
			Aux: fmt.Sprintf("idx=%d inst=%v digest=%x", s.Index, s.Instance, s.Digest[:8]),
		})
	}
	// Candidates at or below the installed boundary are dead; drop
	// everything — fresher ones will re-accumulate if we are still
	// behind, and keeping stale data only risks re-counting old senders.
	t.candidates = make(map[[32]byte]*candidate)
	t.manifests = make(map[[32]byte]*manifestCandidate)
	t.stopFetch()
	if t.cfg.OnInstall != nil {
		t.cfg.OnInstall(s)
	}
}

// reject counts one discarded candidate payload.
func (t *Transfer) reject() {
	t.rejected++
	if m := t.cfg.Metrics; m != nil {
		m.Rejected.Inc()
	}
}

// stopFetch ends the in-flight fetch round and any chunk download.
func (t *Transfer) stopFetch() {
	t.fetching = false
	t.dl = nil
	if t.cancelRetry != nil {
		t.cancelRetry()
		t.cancelRetry = nil
	}
}

// Requests returns how many SNAP_REQ broadcasts went out.
func (t *Transfer) Requests() int { return t.requests }

// Served returns how many snapshots this replica served to peers.
func (t *Transfer) Served() int { return t.served }

// Installs returns how many corroborated snapshots were installed.
func (t *Transfer) Installs() int { return t.installs }

// Rejected returns how many responses failed validation (bad digest,
// malformed bytes, or an install-time inconsistency).
func (t *Transfer) Rejected() int { return t.rejected }

// ChunksServed returns how many chunk frames this replica sent.
func (t *Transfer) ChunksServed() int { return t.chServed }

// ChunksReceived returns how many chunk frames were accepted into a
// download.
func (t *Transfer) ChunksReceived() int { return t.chRecv }

// ChunkRejected returns how many chunk-protocol frames were discarded
// (malformed, forged hash, off-manifest range).
func (t *Transfer) ChunkRejected() int { return t.chRejects }

// Downloading reports whether a chunk download is in flight (test and
// introspection hook).
func (t *Transfer) Downloading() bool { return t.dl != nil }
