// Chunked snapshot transfer: the codec side.
//
// A transfer payload (EncodeTransfer: snapshot + retained dedup window)
// historically traveled as ONE wire frame, which caps the shippable
// machine state at the codec's MaxValueLen — a replicated KV holding a
// few multi-MB values simply could not be transferred. Chunking lifts
// the cliff without touching the trust model:
//
//	SNAP_RESP  carries a one-byte form tag. Form 0 is the inline payload
//	           (small states: exactly the historical single frame, one
//	           byte longer). Form 1 is a MANIFEST: the payload digest,
//	           the snapshot position, and the SHA-256 of every chunk.
//	SNAP_ACK   requester → server: "send me chunks [From, From+Window)
//	           of payload Digest". Re-sent for whatever range is still
//	           missing, which is the whole loss-recovery story.
//	SNAP_CHUNK server → requester: one chunk, tagged with the payload
//	           digest and its index.
//
// The t+1 corroboration moves to the MANIFEST bytes: the manifest is a
// pure function of the payload (itself a pure function of the committed
// prefix), so correct replicas produce byte-identical manifests and
// t+1 matching copies pin every chunk hash before a single chunk is
// fetched. Each arriving chunk is checked against its pinned hash, so a
// Byzantine server can withhold (the ack re-requests from another
// corroborator) but never corrupt; the assembled payload is re-hashed
// against the manifest digest and then travels the exact validation
// path an inline payload does (DecodeTransfer → Applier.Install).
package sm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// Transfer response form tags (first byte of every SNAP_RESP value).
const (
	// TransferFormInline marks a complete EncodeTransfer payload.
	TransferFormInline = 0
	// TransferFormManifest marks an EncodeManifest body.
	TransferFormManifest = 1
)

// TransferInlineMax is the largest payload served inline (form 0).
// Anything bigger goes through the manifest/chunk protocol. Well under
// wire.MaxValueLen so an inline frame always fits the codec; big enough
// that the simulation suites' small states keep the historical
// single-frame schedule.
const TransferInlineMax = 64 << 10

// TransferChunkSize is the chunk payload size (except the final chunk).
// With the 36-byte chunk header the frame stays far inside
// wire.MaxValueLen.
const TransferChunkSize = 256 << 10

// MaxManifestChunks bounds a manifest's chunk count (Byzantine defense:
// a forged count must not force unbounded allocation). It also caps the
// largest transferable payload at MaxManifestChunks×TransferChunkSize
// (1 GiB with the defaults).
const MaxManifestChunks = 4096

// TransferChunkWindow is how many chunks one ack may request (and the
// amplification bound on the serve side: one 40-byte ack yields at most
// this many chunk frames).
const TransferChunkWindow = 16

// TransferStallLimit is how many consecutive retry firings a chunk
// download may go without receiving a single new chunk before the
// fetcher abandons it and re-corroborates from scratch. Staleness is
// invisible to the fetcher: the serve side silently ignores acks whose
// payload digest no longer matches its current snapshot (the retained
// suffix grows while the boundary stands still, so same-instance
// payloads drift), and a download pinned to such a digest would
// otherwise retry forever. Abandoning also clears the manifest
// candidate's corroboration, so restarting the download takes t+1
// fresh senders — one Byzantine replay of the dead manifest cannot
// re-pin the fetcher.
const TransferStallLimit = 3

// chunkDigestLen prefixes chunk and ack frames (SHA-256).
const chunkDigestLen = 32

// Manifest describes a chunked transfer payload: position, geometry and
// the hash of every chunk. Its ENCODING is the corroboration unit — see
// the package comment.
type Manifest struct {
	// Index / Instance are the snapshot position (must match the decoded
	// payload's, checked at assembly).
	Index    int
	Instance types.Instance
	// TotalLen is the payload length in bytes.
	TotalLen int
	// Payload is the SHA-256 of the full transfer payload — the key the
	// acks and chunks are tagged with.
	Payload [32]byte
	// Hashes[i] is the SHA-256 of chunk i. len(Hashes) ==
	// ceil(TotalLen/TransferChunkSize).
	Hashes [][32]byte
}

// ChunkCount returns the number of chunks the manifest's payload splits
// into.
func (m Manifest) ChunkCount() int { return len(m.Hashes) }

// ChunkLen returns the byte length of chunk i (TransferChunkSize except
// for the final chunk).
func (m Manifest) ChunkLen(i int) int {
	if i == len(m.Hashes)-1 {
		return m.TotalLen - i*TransferChunkSize
	}
	return TransferChunkSize
}

// BuildManifest splits a transfer payload into its manifest.
func BuildManifest(index int, instance types.Instance, payload []byte) (Manifest, error) {
	if len(payload) == 0 {
		return Manifest{}, fmt.Errorf("sm: empty transfer payload")
	}
	count := (len(payload) + TransferChunkSize - 1) / TransferChunkSize
	if count > MaxManifestChunks {
		return Manifest{}, fmt.Errorf("sm: payload of %d bytes needs %d chunks (max %d)",
			len(payload), count, MaxManifestChunks)
	}
	m := Manifest{
		Index:    index,
		Instance: instance,
		TotalLen: len(payload),
		Payload:  sha256.Sum256(payload),
		Hashes:   make([][32]byte, count),
	}
	for i := 0; i < count; i++ {
		lo := i * TransferChunkSize
		hi := lo + m.ChunkLen(i)
		m.Hashes[i] = sha256.Sum256(payload[lo:hi])
	}
	return m, nil
}

// manifestHeaderLen: u64 index ‖ u64 instance ‖ u64 total length ‖
// u32 chunk count, followed by the payload digest and the chunk hashes.
const manifestHeaderLen = 8 + 8 + 8 + 4

// EncodeManifest flattens a manifest (without the form tag — the
// transfer layer prepends it).
func EncodeManifest(m Manifest) []byte {
	buf := make([]byte, manifestHeaderLen+chunkDigestLen+len(m.Hashes)*32)
	binary.LittleEndian.PutUint64(buf, uint64(m.Index))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Instance))
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.TotalLen))
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(m.Hashes)))
	copy(buf[manifestHeaderLen:], m.Payload[:])
	off := manifestHeaderLen + chunkDigestLen
	for _, h := range m.Hashes {
		copy(buf[off:], h[:])
		off += 32
	}
	return buf
}

// DecodeManifest is EncodeManifest's strict inverse: every field bound
// is checked (the bytes may come from a Byzantine peer) and trailing
// bytes are refused, so decode→encode is canonical.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < manifestHeaderLen+chunkDigestLen {
		return m, fmt.Errorf("sm: manifest of %d bytes is too short", len(b))
	}
	idx := binary.LittleEndian.Uint64(b)
	inst := binary.LittleEndian.Uint64(b[8:])
	total := binary.LittleEndian.Uint64(b[16:])
	count := binary.LittleEndian.Uint32(b[24:])
	if idx > 1<<62 || inst > 1<<62 {
		return m, fmt.Errorf("sm: manifest position out of range")
	}
	if count == 0 || count > MaxManifestChunks {
		return m, fmt.Errorf("sm: manifest chunk count %d out of range", count)
	}
	if total == 0 || total > uint64(count)*TransferChunkSize ||
		total <= uint64(count-1)*TransferChunkSize {
		return m, fmt.Errorf("sm: manifest length %d does not fill %d chunks", total, count)
	}
	if len(b) != manifestHeaderLen+chunkDigestLen+int(count)*32 {
		return m, fmt.Errorf("sm: manifest of %d bytes does not hold %d hashes", len(b), count)
	}
	m.Index, m.Instance, m.TotalLen = int(idx), types.Instance(inst), int(total)
	copy(m.Payload[:], b[manifestHeaderLen:])
	m.Hashes = make([][32]byte, count)
	off := manifestHeaderLen + chunkDigestLen
	for i := range m.Hashes {
		copy(m.Hashes[i][:], b[off:])
		off += 32
	}
	return m, nil
}

// chunkHeaderLen: payload digest ‖ u32 chunk index.
const chunkHeaderLen = chunkDigestLen + 4

// EncodeChunk frames one chunk of the payload named by digest.
func EncodeChunk(digest [32]byte, index int, data []byte) types.Value {
	buf := make([]byte, chunkHeaderLen+len(data))
	copy(buf, digest[:])
	binary.LittleEndian.PutUint32(buf[chunkDigestLen:], uint32(index))
	copy(buf[chunkHeaderLen:], data)
	return types.Value(buf)
}

// DecodeChunk is EncodeChunk's strict inverse. The chunk DATA is not
// validated here — only the manifest holder knows the expected hash and
// length; the transfer layer checks both against the corroborated
// manifest.
func DecodeChunk(v types.Value) (digest [32]byte, index int, data []byte, err error) {
	b := []byte(v)
	if len(b) < chunkHeaderLen {
		return digest, 0, nil, fmt.Errorf("sm: chunk frame of %d bytes is too short", len(b))
	}
	if len(b) > chunkHeaderLen+TransferChunkSize {
		return digest, 0, nil, fmt.Errorf("sm: chunk frame of %d bytes exceeds chunk size", len(b))
	}
	copy(digest[:], b)
	idx := binary.LittleEndian.Uint32(b[chunkDigestLen:])
	if idx >= MaxManifestChunks {
		return digest, 0, nil, fmt.Errorf("sm: chunk index %d out of range", idx)
	}
	return digest, int(idx), b[chunkHeaderLen:], nil
}

// ackFrameLen: payload digest ‖ u32 from ‖ u32 window.
const ackFrameLen = chunkDigestLen + 4 + 4

// EncodeAck frames a range request: "send chunks [from, from+window) of
// payload digest".
func EncodeAck(digest [32]byte, from, window int) types.Value {
	buf := make([]byte, ackFrameLen)
	copy(buf, digest[:])
	binary.LittleEndian.PutUint32(buf[chunkDigestLen:], uint32(from))
	binary.LittleEndian.PutUint32(buf[chunkDigestLen+4:], uint32(window))
	return types.Value(buf)
}

// DecodeAck is EncodeAck's strict inverse; the window is bounded so a
// forged ack cannot request more than TransferChunkWindow chunks.
func DecodeAck(v types.Value) (digest [32]byte, from, window int, err error) {
	b := []byte(v)
	if len(b) != ackFrameLen {
		return digest, 0, 0, fmt.Errorf("sm: ack frame of %d bytes, want %d", len(b), ackFrameLen)
	}
	copy(digest[:], b)
	f := binary.LittleEndian.Uint32(b[chunkDigestLen:])
	w := binary.LittleEndian.Uint32(b[chunkDigestLen+4:])
	if f >= MaxManifestChunks {
		return digest, 0, 0, fmt.Errorf("sm: ack range start %d out of range", f)
	}
	if w == 0 || w > TransferChunkWindow {
		return digest, 0, 0, fmt.Errorf("sm: ack window %d out of range", w)
	}
	return digest, int(f), int(w), nil
}
