// Package sim is a deterministic discrete-event simulation kernel: a
// virtual clock, an event heap ordered by (time, sequence number), and a
// seeded random source. It is the substrate on which the asynchronous
// message-passing model of the paper is executed reproducibly — the same
// seed and configuration always yield the same schedule, which is what
// makes adversarial schedules and regression tests possible.
//
// Local processing takes zero virtual time (§2.1 of the paper): handlers
// run instantaneously at their scheduled instant; only message transfer and
// timers advance the clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/types"
)

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	at  types.Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
	// canceled supports O(log n) lazy timer cancellation.
	canceled *bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Canceler cancels a scheduled event (typically a timer). Canceling an
// already-fired or already-canceled event is a no-op.
type Canceler func()

// Scheduler is the simulation kernel. Not safe for concurrent use: the
// whole simulation is single-threaded by design (determinism).
type Scheduler struct {
	now     types.Time
	seq     uint64
	heap    eventHeap
	rng     *rand.Rand
	stopped bool

	// Executed counts events actually run (for run-length diagnostics).
	Executed uint64
}

// NewScheduler returns a scheduler with the clock at 0 and the given seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() types.Time { return s.now }

// Rand exposes the deterministic random source. All randomness in a
// simulation must come from here.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past is clamped to "now" (runs after currently queued simultaneous
// events). It returns a Canceler.
func (s *Scheduler) At(at types.Time, fn func()) Canceler {
	if at < s.now {
		at = s.now
	}
	canceled := new(bool)
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, fn: fn, canceled: canceled})
	return func() { *canceled = true }
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d types.Duration, fn func()) Canceler {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Stop makes Run return before executing the next event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued (possibly canceled) events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Run executes events in (time, seq) order until one of:
//   - the queue drains,
//   - Stop is called from inside an event,
//   - the virtual clock would pass deadline (0 = no deadline),
//   - maxEvents events have run (0 = no limit).
//
// It returns the reason it stopped.
type StopReason int

// Stop reasons for Run.
const (
	Drained StopReason = iota + 1 // no events left
	Stopped                       // Stop() called
	DeadlineReached
	EventLimit
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case Drained:
		return "drained"
	case Stopped:
		return "stopped"
	case DeadlineReached:
		return "deadline"
	case EventLimit:
		return "event-limit"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Run drives the simulation. See StopReason for the termination contract.
func (s *Scheduler) Run(deadline types.Time, maxEvents uint64) StopReason {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return Stopped
		}
		e := heap.Pop(&s.heap).(*event)
		if *e.canceled {
			continue
		}
		if deadline > 0 && e.at > deadline {
			// Put it back so a later Run call can resume seamlessly.
			heap.Push(&s.heap, e)
			s.now = deadline
			return DeadlineReached
		}
		if maxEvents > 0 && s.Executed >= maxEvents {
			heap.Push(&s.heap, e)
			return EventLimit
		}
		s.now = e.at
		s.Executed++
		e.fn()
	}
	return Drained
}
