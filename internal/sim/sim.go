// Package sim is a deterministic discrete-event simulation kernel: a
// virtual clock, an event heap ordered by (time, sequence number), and a
// seeded random source. It is the substrate on which the asynchronous
// message-passing model of the paper is executed reproducibly — the same
// seed and configuration always yield the same schedule, which is what
// makes adversarial schedules and regression tests possible.
//
// Local processing takes zero virtual time (§2.1 of the paper): handlers
// run instantaneously at their scheduled instant; only message transfer and
// timers advance the clock.
//
// The kernel is built for large-n throughput: the heap orders pointer-free
// 24-byte keys in a 4-ary layout (sift operations incur no GC write
// barriers), event bodies — run-func, fire-timer, or deliver-message — live
// in stable arena slots recycled through a free list (no per-event heap
// node, no per-send closure), and timers cancel through the slot's
// generation counter (no per-timer allocation). The steady-state
// schedule/fire/deliver path performs no heap allocation. Only the total
// (time, seq) order of execution is the determinism contract; the heap
// shape and storage strategy are free to change.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/types"
)

// Event variants. A deliver event carries a network payload to the deliver
// hook; timer and func events carry a callback (the split is descriptive:
// timers are created through After, funcs through At). The zero kind marks
// a free arena slot.
const (
	evFunc uint8 = iota + 1
	evTimer
	evDeliver
)

// heapKey is one heap entry: the ordering key plus the arena index of the
// event body. It deliberately contains no pointers, so sift operations
// move 24-byte pointer-free values and skip the write barrier.
//
// The (at, seq) pair is a strict total order: seq is unique per scheduler,
// so simultaneous events run in scheduling order (FIFO) no matter how the
// heap arranges them.
type heapKey struct {
	at  types.Time
	seq uint64
	idx int32
}

// event is one event body in a stable arena slot. gen survives slot reuse
// and increments on every release, so a stale Canceler (cancel-after-fire,
// double cancel, cancel after slot reuse) can never touch a later event.
type event struct {
	fn       func()
	payload  any
	from     types.ProcID
	to       types.ProcID
	gen      uint32
	kind     uint8 // 0 = free slot
	canceled bool
}

// DeliverFunc consumes a deliver-message event at its delivery instant.
type DeliverFunc func(from, to types.ProcID, payload any)

// Canceler cancels a scheduled event (typically a timer). The zero value
// is a no-op, as is canceling an already-fired or already-canceled event.
type Canceler struct {
	s   *Scheduler
	idx int32
	gen uint32
}

// Cancel marks the event so it will not fire. Cancellation is lazy — the
// entry stays in the heap until popped or compacted away — but the slot
// generation guarantees exactly-once semantics.
func (c Canceler) Cancel() {
	s := c.s
	if s == nil {
		return
	}
	b := &s.arena[c.idx]
	if b.gen != c.gen || b.kind == 0 || b.canceled {
		return
	}
	b.canceled = true
	s.canceled++
	s.maybeCompact()
}

// Scheduler is the simulation kernel. Not safe for concurrent use: the
// whole simulation is single-threaded by design (determinism).
type Scheduler struct {
	now  types.Time
	seq  uint64
	heap []heapKey

	arena    []event // event bodies, addressed by heapKey.idx
	freeEv   []int32 // free list of arena slots
	canceled int     // canceled entries still sitting in the heap

	deliver DeliverFunc
	rng     *rand.Rand
	stopped bool

	// Executed counts events actually run (for run-length diagnostics).
	Executed uint64
	// Compactions counts heap compaction passes (diagnostics).
	Compactions uint64
}

// NewScheduler returns a scheduler with the clock at 0 and the given seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() types.Time { return s.now }

// Rand exposes the deterministic random source. All randomness in a
// simulation must come from here.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// SetDeliver registers the hook that consumes deliver-message events
// (the network installs itself here once per world).
func (s *Scheduler) SetDeliver(fn DeliverFunc) { s.deliver = fn }

// --- arena + 4-ary heap over (at, seq) ---------------------------------------

// before reports strict (at, seq) order. seq uniqueness makes it total.
func before(a, b heapKey) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// allocEvent stores the body in a recycled (or fresh) arena slot and
// returns its index; the slot's generation is preserved across reuse.
func (s *Scheduler) allocEvent(e event) int32 {
	if n := len(s.freeEv); n > 0 {
		idx := s.freeEv[n-1]
		s.freeEv = s.freeEv[:n-1]
		e.gen = s.arena[idx].gen
		s.arena[idx] = e
		return idx
	}
	s.arena = append(s.arena, e)
	return int32(len(s.arena) - 1)
}

// takeEvent copies the body out, clears the slot (releasing fn/payload
// references), bumps its generation and recycles it.
func (s *Scheduler) takeEvent(idx int32) event {
	b := &s.arena[idx]
	e := *b
	*b = event{gen: e.gen + 1}
	s.freeEv = append(s.freeEv, idx)
	return e
}

func (s *Scheduler) push(at types.Time, e event) int32 {
	idx := s.allocEvent(e)
	s.seq++
	k := heapKey{at: at, seq: s.seq, idx: idx}
	s.heap = append(s.heap, k)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !before(k, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = k
	return idx
}

// popTop removes heap[0]; the caller must have read it first.
func (s *Scheduler) popTop() {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0, last)
	}
}

// siftDown places k at index i, pushing smaller children up.
func (s *Scheduler) siftDown(i int, k heapKey) {
	n := len(s.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !before(s.heap[m], k) {
			break
		}
		s.heap[i] = s.heap[m]
		i = m
	}
	s.heap[i] = k
}

// compactMin is the minimum number of canceled heap entries before a
// compaction pass is considered (below it, lazy deletion is cheaper).
const compactMin = 64

// maybeCompact rebuilds the heap when canceled entries outnumber live
// ones. Without it, long runs that repeatedly arm and cancel timers (the
// EA round timeout pattern) retain every canceled entry until its original
// fire instant — potentially for the whole run.
func (s *Scheduler) maybeCompact() {
	if s.canceled < compactMin || 2*s.canceled <= len(s.heap) {
		return
	}
	keep := s.heap[:0]
	for _, k := range s.heap {
		if s.arena[k.idx].canceled {
			s.takeEvent(k.idx)
			continue
		}
		keep = append(keep, k)
	}
	s.heap = keep
	s.canceled = 0
	for i := (len(s.heap) - 2) / 4; i >= 0; i-- {
		s.siftDown(i, s.heap[i])
	}
	s.Compactions++
}

// --- scheduling ---------------------------------------------------------------

func (s *Scheduler) schedule(at types.Time, kind uint8, fn func()) Canceler {
	if at < s.now {
		at = s.now
	}
	idx := s.push(at, event{fn: fn, kind: kind})
	return Canceler{s: s, idx: idx, gen: s.arena[idx].gen}
}

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past is clamped to "now" (runs after currently queued simultaneous
// events). It returns a Canceler.
func (s *Scheduler) At(at types.Time, fn func()) Canceler {
	return s.schedule(at, evFunc, fn)
}

// After schedules fn to run d from now (the fire-timer event variant).
func (s *Scheduler) After(d types.Duration, fn func()) Canceler {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now.Add(d), evTimer, fn)
}

// ScheduleDeliver queues a deliver-message event: at time at, the
// registered deliver hook receives (from, to, payload). This is the
// allocation-free path the network routes every message through.
func (s *Scheduler) ScheduleDeliver(at types.Time, from, to types.ProcID, payload any) {
	if at < s.now {
		at = s.now
	}
	s.push(at, event{payload: payload, from: from, to: to, kind: evDeliver})
}

// Stop makes Run return before executing the next event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued (possibly canceled) events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// PendingCanceled returns how many queued events are lazily canceled
// (bounded by the compaction policy; exposed for regression tests).
func (s *Scheduler) PendingCanceled() int { return s.canceled }

// Run executes events in (time, seq) order until one of:
//   - the queue drains,
//   - Stop is called from inside an event,
//   - the virtual clock would pass deadline (0 = no deadline),
//   - maxEvents events have run (0 = no limit).
//
// It returns the reason it stopped.
type StopReason int

// Stop reasons for Run.
const (
	Drained StopReason = iota + 1 // no events left
	Stopped                       // Stop() called
	DeadlineReached
	EventLimit
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case Drained:
		return "drained"
	case Stopped:
		return "stopped"
	case DeadlineReached:
		return "deadline"
	case EventLimit:
		return "event-limit"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Run drives the simulation. See StopReason for the termination contract.
func (s *Scheduler) Run(deadline types.Time, maxEvents uint64) StopReason {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return Stopped
		}
		top := s.heap[0]
		if s.arena[top.idx].canceled {
			s.popTop()
			s.takeEvent(top.idx)
			s.canceled--
			continue
		}
		if deadline > 0 && top.at > deadline {
			s.now = deadline
			return DeadlineReached
		}
		if maxEvents > 0 && s.Executed >= maxEvents {
			return EventLimit
		}
		s.popTop()
		e := s.takeEvent(top.idx)
		s.now = top.at
		s.Executed++
		if e.kind != evDeliver {
			e.fn()
			continue
		}
		s.deliver(e.from, e.to, e.payload)
		// Batch simultaneous same-destination deliveries: as long as the
		// globally next event is a deliver to the same process at the same
		// instant, hand it over without re-entering the outer loop. Order
		// is untouched — only events already next in (at, seq) order are
		// taken — so traces are byte-identical with and without batching.
		for len(s.heap) > 0 && !s.stopped {
			t := s.heap[0]
			if t.at != top.at {
				break
			}
			if nb := &s.arena[t.idx]; nb.kind != evDeliver || nb.to != e.to || nb.canceled {
				break
			}
			if maxEvents > 0 && s.Executed >= maxEvents {
				break
			}
			s.popTop()
			d := s.takeEvent(t.idx)
			s.Executed++
			s.deliver(d.from, d.to, d.payload)
		}
	}
	return Drained
}
