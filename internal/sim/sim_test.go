package sim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func TestRunOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("Run = %v", r)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != types.Time(30*time.Millisecond) {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimultaneousFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(types.Time(5), func() { got = append(got, i) })
	}
	s.Run(0, 0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events must run in scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var got []string
	s.After(10, func() {
		got = append(got, "a")
		s.After(5, func() { got = append(got, "c") })
		s.After(0, func() { got = append(got, "b") }) // same instant, after current
	})
	s.Run(0, 0)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	cancel := s.After(10, func() { fired = true })
	cancel.Cancel()
	cancel.Cancel() // double-cancel is a no-op
	s.Run(0, 0)
	if fired {
		t.Fatal("canceled event fired")
	}
	if s.Executed != 0 {
		t.Fatalf("Executed = %d", s.Executed)
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	var cancel Canceler
	cancel = s.After(20, func() { fired = true })
	s.After(10, func() { cancel.Cancel() })
	s.Run(0, 0)
	if fired {
		t.Fatal("event canceled at t=10 still fired at t=20")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(1, func() { n++; s.Stop() })
	s.After(2, func() { n++ })
	if r := s.Run(0, 0); r != Stopped {
		t.Fatalf("Run = %v", r)
	}
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	// Resume runs the remaining event.
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("resume Run = %v", r)
	}
	if n != 2 {
		t.Fatalf("after resume n = %d", n)
	}
}

func TestDeadline(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(10, func() { n++ })
	s.After(30, func() { n++ })
	if r := s.Run(20, 0); r != DeadlineReached {
		t.Fatalf("Run = %v", r)
	}
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if s.Now() != 20 {
		t.Fatalf("clock must stop at deadline, Now = %d", s.Now())
	}
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("resume = %v", r)
	}
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

func TestEventLimit(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 5; i++ {
		s.After(types.Duration(i), func() {})
	}
	if r := s.Run(0, 3); r != EventLimit {
		t.Fatalf("Run = %v", r)
	}
	if s.Executed != 3 {
		t.Fatalf("Executed = %d", s.Executed)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	s := NewScheduler(1)
	var at types.Time = -1
	s.After(10, func() {
		s.At(5, func() { at = s.Now() }) // in the past → clamped to now
	})
	s.Run(0, 0)
	if at != 10 {
		t.Fatalf("past event ran at %d, want 10", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 6 {
				return
			}
			d := types.Duration(s.Rand().Intn(100))
			s.After(d, func() {
				trace = append(trace, int64(s.Now()))
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		s.Run(0, 0)
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical non-trivial traces")
	}
}

// TestClockMonotonic property-checks that the observed clock never goes
// backwards regardless of the scheduling pattern.
func TestClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(7)
		last := types.Time(-1)
		okAll := true
		for _, d := range delays {
			d := types.Duration(d)
			s.After(d, func() {
				if s.Now() < last {
					okAll = false
				}
				last = s.Now()
			})
		}
		s.Run(0, 0)
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStopReasonString(t *testing.T) {
	for r, want := range map[StopReason]string{
		Drained: "drained", Stopped: "stopped",
		DeadlineReached: "deadline", EventLimit: "event-limit",
		StopReason(99): "StopReason(99)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}
