package sim

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// TestSlotReuseAfterCancel checks the generation counter across free-list
// reuse: a canceler kept from a canceled-and-reaped event must not be able
// to cancel the event that later recycles its arena slot.
func TestSlotReuseAfterCancel(t *testing.T) {
	s := NewScheduler(1)
	stale := s.After(10, func() { t.Fatal("canceled event fired") })
	stale.Cancel()
	if got := s.PendingCanceled(); got != 1 {
		t.Fatalf("PendingCanceled = %d, want 1", got)
	}
	// Drain: the canceled event is reaped, its slot goes to the free list.
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("Run = %v", r)
	}
	// The next event recycles the slot; the stale canceler must be inert.
	fired := false
	s.After(5, func() { fired = true })
	stale.Cancel()
	s.Run(0, 0)
	if !fired {
		t.Fatal("stale canceler from a previous slot generation canceled a new event")
	}
}

// TestCancelAfterFire checks that canceling an event that has already run
// is a no-op even when its slot has been recycled by a live event.
func TestCancelAfterFire(t *testing.T) {
	s := NewScheduler(1)
	var c Canceler
	c = s.After(1, func() {})
	s.Run(0, 0)
	fired := false
	s.After(1, func() { fired = true }) // reuses the freed slot
	c.Cancel()                          // stale: must not touch the new event
	c.Cancel()                          // and double-cancel stays inert
	s.Run(0, 0)
	if !fired {
		t.Fatal("cancel-after-fire reached a recycled slot")
	}
	if s.PendingCanceled() != 0 {
		t.Fatalf("PendingCanceled = %d after inert cancels", s.PendingCanceled())
	}
}

// TestCancelFromInsideOwnEvent: an event canceling itself while running is
// a no-op (the slot was released before the callback fired).
func TestCancelFromInsideOwnEvent(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	var c Canceler
	c = s.After(1, func() {
		ran++
		c.Cancel()
	})
	s.Run(0, 0)
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if s.PendingCanceled() != 0 {
		t.Fatalf("self-cancel leaked a canceled mark: %d", s.PendingCanceled())
	}
}

// TestCompactionBoundsHeap is the canceled-timer retention regression
// test: the repeated arm-then-cancel pattern of EA round timeouts (a
// far-future timer canceled as soon as the round advances) must not
// accumulate in the heap for the rest of the run.
func TestCompactionBoundsHeap(t *testing.T) {
	s := NewScheduler(1)
	// A handful of live far-future events so the heap is never empty.
	const live = 50
	for i := 0; i < live; i++ {
		s.At(types.Time(1_000_000+i), func() {})
	}
	const churns = 100_000
	maxPending := 0
	for i := 0; i < churns; i++ {
		c := s.After(types.Duration(500_000+i), func() { t.Fatal("canceled timer fired") })
		c.Cancel()
		if p := s.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// Without compaction the heap would hold live + churns entries. The
	// policy bounds the canceled fraction at half the heap (plus the
	// compactMin hysteresis).
	bound := 2*(live+compactMin) + 1
	if maxPending > bound {
		t.Fatalf("heap grew to %d entries under cancel churn (bound %d)", maxPending, bound)
	}
	if s.Compactions == 0 {
		t.Fatal("no compaction pass ran under heavy cancel churn")
	}
	// The free lists must actually recycle: the arena cannot have grown
	// anywhere near one slot per churned timer.
	if len(s.arena) > bound {
		t.Fatalf("arena grew to %d slots; free list is not recycling", len(s.arena))
	}
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("Run = %v", r)
	}
	if s.Executed != live {
		t.Fatalf("Executed = %d, want %d (only live events run)", s.Executed, live)
	}
}

// TestInterleavingFuzz drives a randomized schedule/cancel/fire
// interleaving against a reference model and checks that exactly the
// never-canceled events fire, in nondecreasing time order, regardless of
// how slots and heap entries are recycled. The generation counters make
// this safe even though cancelers are used late (after fire, after reuse).
func TestInterleavingFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := NewScheduler(int64(trial))
		type tracked struct {
			c        Canceler
			canceled bool
			fired    bool
		}
		var evs []*tracked
		var order []types.Time
		var schedule func(depth int)
		schedule = func(depth int) {
			tr := &tracked{}
			evs = append(evs, tr)
			d := types.Duration(rng.Intn(1000))
			tr.c = s.After(d, func() {
				tr.fired = true
				order = append(order, s.Now())
				if depth < 3 && rng.Intn(2) == 0 {
					schedule(depth + 1)
				}
				// Occasionally cancel a random earlier event mid-run.
				if rng.Intn(3) == 0 {
					v := evs[rng.Intn(len(evs))]
					v.c.Cancel()
					if !v.fired {
						v.canceled = true
					}
				}
			})
		}
		for i := 0; i < 40; i++ {
			schedule(0)
		}
		// Pre-run cancels, including double cancels.
		for _, v := range evs {
			if rng.Intn(4) == 0 {
				v.c.Cancel()
				v.canceled = true
				if rng.Intn(2) == 0 {
					v.c.Cancel()
				}
			}
		}
		if r := s.Run(0, 0); r != Drained {
			t.Fatalf("trial %d: Run = %v", trial, r)
		}
		for i, v := range evs {
			if v.canceled && v.fired {
				t.Fatalf("trial %d: event %d both canceled and fired", trial, i)
			}
			if !v.canceled && !v.fired {
				t.Fatalf("trial %d: event %d neither canceled nor fired", trial, i)
			}
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("trial %d: fire times regressed: %v", trial, order)
			}
		}
		if s.PendingCanceled() != 0 || s.Pending() != 0 {
			t.Fatalf("trial %d: drained scheduler still has pending=%d canceled=%d",
				trial, s.Pending(), s.PendingCanceled())
		}
	}
}

// TestDeliverBatchOrder checks that same-instant same-destination delivery
// batching does not perturb (time, seq) order across interleaved
// destinations.
func TestDeliverBatchOrder(t *testing.T) {
	s := NewScheduler(1)
	type rec struct {
		from, to types.ProcID
		at       types.Time
	}
	var got []rec
	s.SetDeliver(func(from, to types.ProcID, payload any) {
		got = append(got, rec{from, to, s.Now()})
	})
	// Interleave destinations at the same instant plus a func event.
	s.ScheduleDeliver(5, 1, 2, nil)
	s.ScheduleDeliver(5, 3, 2, nil)
	s.ScheduleDeliver(5, 1, 4, nil)
	s.ScheduleDeliver(5, 2, 2, nil)
	ranFn := false
	s.At(5, func() { ranFn = true })
	s.ScheduleDeliver(5, 4, 2, nil)
	s.Run(0, 0)
	want := []rec{{1, 2, 5}, {3, 2, 5}, {1, 4, 5}, {2, 2, 5}, {4, 2, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %d deliveries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v (batching must preserve seq order)", i, got[i], want[i])
		}
	}
	if !ranFn {
		t.Fatal("func event between deliver batches did not run")
	}
	if s.Executed != 6 {
		t.Fatalf("Executed = %d, want 6 (batched deliveries still count)", s.Executed)
	}
}

// TestDeliverRespectsEventLimit: the batch fast path must honor maxEvents.
func TestDeliverRespectsEventLimit(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.SetDeliver(func(types.ProcID, types.ProcID, any) { n++ })
	for i := 0; i < 5; i++ {
		s.ScheduleDeliver(1, 1, 2, nil)
	}
	if r := s.Run(0, 3); r != EventLimit {
		t.Fatalf("Run = %v", r)
	}
	if n != 3 || s.Executed != 3 {
		t.Fatalf("delivered %d / executed %d, want 3", n, s.Executed)
	}
	if r := s.Run(0, 0); r != Drained {
		t.Fatalf("resume = %v", r)
	}
	if n != 5 {
		t.Fatalf("after resume delivered %d, want 5", n)
	}
}

// TestDeliverStop: a receiver calling Stop must halt the batch drain.
func TestDeliverStop(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.SetDeliver(func(types.ProcID, types.ProcID, any) {
		n++
		if n == 2 {
			s.Stop()
		}
	})
	for i := 0; i < 4; i++ {
		s.ScheduleDeliver(1, 1, 2, nil)
	}
	if r := s.Run(0, 0); r != Stopped {
		t.Fatalf("Run = %v", r)
	}
	if n != 2 {
		t.Fatalf("delivered %d before stop, want 2", n)
	}
}
